//! The ten textual per-line rules, re-hosted on the token stream.
//!
//! This is the engine behind `cargo xtask lint`. The rules themselves
//! are unchanged from the line-oriented implementation they replace
//! (same scopes, same messages, same `lint:allow` escape hatch — the
//! xtask unit tests pin that behavior), but the *input* is no longer
//! the raw line: patterns are matched against the lexer's
//! [`code_view`](crate::lexer::code_view), where comments and
//! string/char literals have been blanked byte-for-byte. A
//! `panic!(...)` spelled inside a doc comment, a `HashMap` mentioned in
//! an error-message string, or a rule pattern quoted inside a nested
//! block comment simply does not exist for the rules anymore — the
//! false-positive/negative class the old comment stripper admitted is
//! gone, and both analysis layers share one lexer.
//!
//! | rule | forbids | where |
//! |------|---------|-------|
//! | `nondeterministic-map` | `std::collections::HashMap`/`HashSet` | `vod-core`, `vod-sim`, `vod-trace` library code |
//! | `nan-unwrap-cmp` | `partial_cmp` (incl. `.unwrap()` comparators) | whole workspace |
//! | `wall-clock` | `Instant::now` / `SystemTime` | outside `crates/bench` |
//! | `raw-index` | `VhoId::new` / `VhoId::from_index` | outside `crates/model`, `crates/net` library code |
//! | `vec-vec-f64` | `Vec<Vec<f64>>` | `vod-core` solver + `vod-sim` simulator hot-path modules |
//! | `dyn-dispatch` | `Box<dyn` | `vod-sim` simulator hot-path modules |
//! | `no-panic-hot-path` | `panic!` / `unreachable!` / `todo!` / `.unwrap()` / `.expect(` | modules reachable from `simulate` / `solve_placement` |
//! | `snapshot-io` | `fs::write(` / `File::create(` | `vod-json`, `vod-ops`, `vod-bench` library + bin code (durable artifact writers) |
//! | `io-fault-shim` | `fs::read(` / `fs::read_to_string(` / `File::open(` / `fs::write(` / `File::create(` | `vod-json`, `vod-ops` library code (snapshot I/O must consult the injectable fault shim) |
//! | `sleep-timer` | `thread::sleep` / `park_timeout` | everywhere except `crates/ops/src/supervise.rs` (the recorded-backoff module) and `crates/bench` |

use crate::lexer::{code_view, comment_view, lex};
use crate::rules::{
    self, deterministic_container_scope, exempt_path, flat_buffer_scope, io_fault_shim_scope,
    no_panic_scope, raw_index_exempt, sim_hot_path_scope, sleep_timer_exempt, snapshot_io_scope,
    test_only_file, wall_clock_exempt,
};
use std::collections::BTreeSet;
use std::fmt;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

pub use crate::rules::TEXTUAL_RULES as RULES;

/// Full outcome of linting one file: the findings plus, for the
/// stale-allow audit, which `lint:allow` annotations actually
/// suppressed something (keyed by the annotation's own line).
#[derive(Debug, Default)]
pub struct TextualOutcome {
    pub findings: Vec<Finding>,
    pub consumed_allows: BTreeSet<usize>,
}

/// Parse `lint:allow(<rule>): <justification>` out of a comment line,
/// if present. Returns `Err` (as a finding message) when the
/// annotation is malformed or lacks a justification.
fn parse_allow(comment_line: &str) -> Option<Result<&'static str, String>> {
    let start = comment_line.find("lint:allow(")?;
    let rest = &comment_line[start + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed lint:allow(...)".to_string()));
    };
    let rule_name = rest[..close].trim();
    let known = RULES
        .iter()
        .chain(rules::ANALYZER_RULES.iter())
        .find(|r| **r == rule_name);
    let Some(rule) = known else {
        return Some(Err(format!(
            "unknown lint rule {rule_name:?} (known: {})",
            rules::known_rules_joined()
        )));
    };
    let after = rest[close + 1..].trim_start();
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Some(Err(format!(
            "lint:allow({rule_name}) requires a justification: `// lint:allow({rule_name}): <why>`"
        )));
    }
    Some(Ok(rule))
}

/// Lint one file's contents. `path` must be workspace-relative with
/// `/` separators.
pub fn lint_file(path: &str, content: &str) -> Vec<Finding> {
    lint_file_full(path, content).findings
}

/// Lint one file, also reporting which annotations were consumed.
pub fn lint_file_full(path: &str, content: &str) -> TextualOutcome {
    let mut out = TextualOutcome::default();
    if exempt_path(path) || !path.ends_with(".rs") {
        return out;
    }
    let test_file = test_only_file(path);

    let tokens = lex(content);
    let code = code_view(content, &tokens);
    let comments = comment_view(content, &tokens);

    // Brace depth inside `#[cfg(test)] mod` blocks; 0 = library code.
    let mut cfg_test_pending = false;
    let mut test_mod_depth: i64 = 0;
    let mut in_test_mod = false;
    // Rules suppressed for the next code line: (rule, annotation line).
    let mut pending_allows: Vec<(&'static str, usize)> = Vec::new();

    for (idx, (code_raw, comment_line)) in code.lines().zip(comments.lines()).enumerate() {
        let lineno = idx + 1;
        let code = code_raw.trim();

        // Annotations live in comments, so parse the comment view.
        if let Some(allow) = parse_allow(comment_line) {
            match allow {
                Ok(rule) => pending_allows.push((rule, lineno)),
                Err(msg) => out.findings.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule: "lint-allow",
                    message: msg,
                }),
            }
        }
        if code.is_empty() {
            continue; // comment or blank line: allows stay pending
        }

        // Track `#[cfg(test)] mod … { … }` regions.
        if code.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        } else if cfg_test_pending && !in_test_mod {
            if code.starts_with("mod ") || code.starts_with("pub mod ") {
                in_test_mod = true;
                test_mod_depth = 0;
            } else if !code.starts_with("#[") {
                // Attribute applied to something other than a module
                // (a test fn outside a tests mod): treat conservatively
                // as library code, but stop waiting for a module.
                cfg_test_pending = false;
            }
        }
        if in_test_mod {
            test_mod_depth += code.matches('{').count() as i64;
            test_mod_depth -= code.matches('}').count() as i64;
            if test_mod_depth <= 0 {
                in_test_mod = false;
                cfg_test_pending = false;
            }
        }
        let in_test_code = test_file || in_test_mod;

        let mut check = |rule: &'static str, hit: bool, message: String| {
            if !hit {
                return;
            }
            if let Some(&(_, allow_line)) = pending_allows.iter().find(|(r, _)| *r == rule) {
                out.consumed_allows.insert(allow_line);
            } else {
                out.findings.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };

        if deterministic_container_scope(path) && !in_test_code {
            check(
                "nondeterministic-map",
                code.contains("HashMap") || code.contains("HashSet"),
                "std hash containers iterate in randomized order; use BTreeMap/BTreeSet \
                 or a sorted Vec so placements are byte-identical across runs"
                    .to_string(),
            );
        }
        check(
            "nan-unwrap-cmp",
            code.contains("partial_cmp"),
            "partial_cmp panics (or silently mis-sorts) on NaN; use f64::total_cmp or \
             vod_model::fcmp"
                .to_string(),
        );
        if !wall_clock_exempt(path) {
            check(
                "wall-clock",
                code.contains("Instant::now") || code.contains("SystemTime"),
                "wall-clock reads outside crates/bench break reproducibility; annotate \
                 solver timing with lint:allow(wall-clock)"
                    .to_string(),
            );
        }
        if !raw_index_exempt(path) && !in_test_code {
            check(
                "raw-index",
                code.contains("VhoId::new(") || code.contains("VhoId::from_index"),
                "raw VhoId construction outside crates/model and crates/net bypasses the \
                 id-newtype boundary; take ids from the Network or annotate the dense-\
                 vector indexing"
                    .to_string(),
            );
        }
        if flat_buffer_scope(path) && !in_test_code {
            check(
                "vec-vec-f64",
                code.contains("Vec<Vec<f64>>"),
                "nested f64 matrices in solver hot paths re-allocate per chunk; use a \
                 flat row-major buffer (crate::penalty::PenaltyArena, UflProblem) or \
                 annotate a boundary constructor"
                    .to_string(),
            );
        }
        if no_panic_scope(path) && !in_test_code {
            check(
                "no-panic-hot-path",
                code.contains("panic!(")
                    || code.contains("unreachable!(")
                    || code.contains("todo!(")
                    || code.contains(".unwrap()")
                    || code.contains(".expect("),
                "panics and unwraps reachable from simulate/solve kill the whole run; \
                 degrade instead (typed SolveError, denial accounting, let-else \
                 fallbacks) or justify an unreachable invariant with \
                 lint:allow(no-panic-hot-path)"
                    .to_string(),
            );
        }
        if snapshot_io_scope(path) && !in_test_code {
            check(
                "snapshot-io",
                code.contains("fs::write(") || code.contains("File::create("),
                "direct file writes in snapshot/results paths can be torn by a crash; \
                 route through vod_json::snapshot::write_atomic (or the snapshot \
                 helpers) so readers only ever see complete files"
                    .to_string(),
            );
        }
        if io_fault_shim_scope(path) && !in_test_code {
            check(
                "io-fault-shim",
                code.contains("fs::read(")
                    || code.contains("fs::read_to_string(")
                    || code.contains("File::open(")
                    || code.contains("fs::write(")
                    || code.contains("File::create("),
                "raw file I/O here bypasses the injectable fault shim (vod_json::faults), \
                 so chaos drills can never reach this path; route through the \
                 vod_json::snapshot helpers, whose single raw-I/O sites consult the \
                 shim's seeded schedule"
                    .to_string(),
            );
        }
        if !sleep_timer_exempt(path) && !in_test_code {
            check(
                "sleep-timer",
                code.contains("thread::sleep") || code.contains("park_timeout"),
                "sleeping outside the recorded-backoff module breaks the never-sleeps \
                 determinism contract (interrupted and uninterrupted runs must be \
                 bit-comparable); record the delay with vod_ops::recorded_backoff and \
                 leave real sleeping to supervise::deployment_sleep"
                    .to_string(),
            );
        }
        if sim_hot_path_scope(path) && !in_test_code {
            check(
                "dyn-dispatch",
                code.contains("Box<dyn"),
                "boxed trait objects in the simulator hot path cost a heap indirection \
                 and an uninlinable virtual call per event; dispatch through the \
                 CacheImpl enum (crates/sim/src/cache.rs) instead"
                    .to_string(),
            );
        }

        pending_allows.clear();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The behavior-pinning suite for these rules lives in
    // `crates/xtask/src/lint.rs` (unchanged across the re-host). The
    // tests here cover exactly what the token-stream re-host *added*:
    // patterns inside string literals and nested block comments.

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn patterns_inside_string_literals_are_not_findings() {
        let src = r#"
            fn f() -> String {
                let a = "Instant::now() and SystemTime belong in strings";
                let b = "HashMap<VhoId, f64> documented here";
                let c = "call .unwrap() or panic!( freely in messages";
                let d = "fs::write( and File::create( quoted";
                format!("{a}{b}{c}{d}")
            }
        "#;
        assert!(lint_file("crates/core/src/epf.rs", src).is_empty());
        assert!(lint_file("crates/json/src/snapshot.rs", src).is_empty());
    }

    #[test]
    fn patterns_inside_raw_strings_are_not_findings() {
        let src = "fn f() -> &'static str { r#\"SystemTime::now() \"quoted\" HashMap\"# }\n";
        assert!(lint_file("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn patterns_inside_nested_block_comments_are_not_findings() {
        let src = "/* outer /* Instant::now() HashMap */ still comment: .unwrap() */\nfn f() {}\n";
        assert!(lint_file("crates/core/src/epf.rs", src).is_empty());
    }

    #[test]
    fn real_pattern_next_to_string_decoy_is_still_caught() {
        let src = "fn f() { let msg = \"HashMap\"; let m = HashMap::new(); }\n";
        let f = lint_file("crates/core/src/foo.rs", src);
        assert_eq!(rules_of(&f), ["nondeterministic-map"]);
    }

    #[test]
    fn unterminated_string_swallows_rest_of_file() {
        // An unterminated literal makes everything after it string
        // contents; the lexer is lenient, the rules see nothing.
        let src = "fn f() { let s = \"unterminated;\nlet t = Instant::now();\n";
        assert!(lint_file("crates/core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn allow_in_string_literal_does_not_suppress() {
        let src = "fn f() { let s = \"lint:allow(wall-clock): fake\"; let t = Instant::now(); }\n";
        let f = lint_file("crates/core/src/foo.rs", src);
        assert_eq!(rules_of(&f), ["wall-clock"]);
    }

    #[test]
    fn consumed_allows_are_reported() {
        let src = "// lint:allow(wall-clock): reporting only\nlet t = Instant::now();\n\
                   // lint:allow(wall-clock): never consumed — no pattern follows\nlet u = 1;\n";
        let out = lint_file_full("crates/core/src/x.rs", src);
        assert!(out.findings.is_empty());
        assert!(out.consumed_allows.contains(&1));
        assert!(!out.consumed_allows.contains(&3));
    }
}
