//! Item extraction: token stream → per-file function inventory.
//!
//! A deliberately lightweight structural parser. It does not build an
//! AST; it walks the non-trivia token stream once, tracking a scope
//! stack (modules, `impl` blocks, functions, loops, plain blocks) by
//! brace matching, and records for every `fn` item:
//!
//! - its module path, owner type (for `impl Type` methods), and line,
//! - whether it is test-only code (`#[cfg(test)]` module / `#[test]`
//!   attribute / `tests/` file),
//! - the token range of its body,
//! - every call site in the body (bare calls, path calls with their
//!   last qualifier segment, method calls), and
//! - the token ranges of loop bodies (`for`/`while`/`loop`), which the
//!   alloc-in-hot-loop pass scans.
//!
//! Approximations are deliberate and always *over*-approximate the
//! call relation (a finding pass built on this can report a false
//! positive that the baseline absorbs, but a nondeterminism source
//! cannot hide behind a call the parser failed to see): `impl Trait
//! for Type` methods belong to `Type`; calls resolve by name; braces
//! inside parenthesized positions (closure bodies in arguments) do not
//! open scopes but their calls still belong to the enclosing function.

use crate::lexer::{lex, LineIndex, Token, TokenKind};

/// Rust keywords that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Callee name (last path segment for `a::b::c(...)`).
    pub name: String,
    /// For `Qual::name(...)`: the segment right before the callee
    /// (`Qual`). `None` for bare and method calls.
    pub qualifier: Option<String>,
    /// `true` for `.name(...)` method calls.
    pub method: bool,
    pub line: usize,
}

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// Enclosing in-file module path (`a::b`; empty at file level).
    pub module: String,
    /// Owner type for `impl` methods (`impl Foo` / `impl T for Foo`).
    pub owner: Option<String>,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Test-only code: `#[cfg(test)]` module, `#[test]` fn, or a file
    /// under `tests/` / `benches/`.
    pub is_test: bool,
    /// Token-index range of the body (between the braces, exclusive).
    pub body: std::ops::Range<usize>,
    pub calls: Vec<Call>,
    /// Token-index ranges of loop bodies within this fn.
    pub loops: Vec<std::ops::Range<usize>>,
}

impl FnItem {
    /// Display name: `file-stem::module::name` — stable across line
    /// edits, unique enough for baselines and chains.
    pub fn qual(&self) -> String {
        let mut q = String::new();
        if !self.module.is_empty() {
            q.push_str(&self.module);
            q.push_str("::");
        }
        if let Some(o) = &self.owner {
            q.push_str(o);
            q.push_str("::");
        }
        q.push_str(&self.name);
        q
    }
}

/// A lexed, parsed source file ready for the passes.
#[derive(Debug)]
pub struct ParsedFile {
    pub path: String,
    pub content: String,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-trivia tokens, in order.
    pub code: Vec<usize>,
    pub lines: LineIndex,
}

impl ParsedFile {
    pub fn new(path: String, content: String) -> Self {
        let tokens = lex(&content);
        let code = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let lines = LineIndex::new(&content);
        Self {
            path,
            content,
            tokens,
            code,
            lines,
        }
    }

    /// Text of the `i`-th *code* token (see [`ParsedFile::code`]).
    pub fn code_text(&self, i: usize) -> &str {
        self.code
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map(|t| t.text(&self.content))
            .unwrap_or("")
    }

    pub fn code_kind(&self, i: usize) -> Option<TokenKind> {
        self.code
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map(|t| t.kind)
    }

    pub fn code_line(&self, i: usize) -> usize {
        self.code
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map(|t| self.lines.line_of(t.start))
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Block,
    Mod { test: bool },
    Impl,
    Fn { item: usize },
    Loop,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    name: String,
    open: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Pending {
    Mod { name: String, test: bool },
    Impl { owner: Option<String> },
    Fn { item: usize },
    Loop,
}

fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.starts_with("tests/") || path.contains("/benches/")
}

/// Extract every `fn` item from a parsed file.
pub fn extract_fns(pf: &ParsedFile) -> Vec<FnItem> {
    let file_test = is_test_path(&pf.path);
    let mut fns: Vec<FnItem> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut attr_test = false;
    let mut paren_depth: i64 = 0;
    let n = pf.code.len();
    let mut i = 0usize;
    while i < n {
        let text = pf.code_text(i);
        match text {
            "#" => {
                // Attribute: `#[...]` or `#![...]`. Scan to the
                // matching `]`, noting `test` (without `not`).
                let mut j = i + 1;
                if pf.code_text(j) == "!" {
                    j += 1;
                }
                if pf.code_text(j) == "[" {
                    let mut depth = 0i64;
                    let mut saw_test = false;
                    let mut saw_not = false;
                    while j < n {
                        match pf.code_text(j) {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "test" => saw_test = true,
                            "not" => saw_not = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    if saw_test && !saw_not {
                        attr_test = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            "mod" if paren_depth == 0 && pf.code_kind(i + 1) == Some(TokenKind::Ident) => {
                let name = pf.code_text(i + 1).to_string();
                let enclosing_test = scopes
                    .iter()
                    .any(|s| matches!(s.kind, ScopeKind::Mod { test: true }));
                pending = Some(Pending::Mod {
                    name,
                    test: attr_test || enclosing_test,
                });
                attr_test = false;
                i += 2;
                continue;
            }
            "impl" if paren_depth == 0 => {
                // Item-position `impl` only: `fn f() -> impl Trait {`
                // must not steal the pending fn scope.
                if pending.is_none() {
                    pending = Some(Pending::Impl {
                        owner: parse_impl_owner(pf, i + 1),
                    });
                }
                i += 1;
                continue;
            }
            "fn" if paren_depth == 0 && pf.code_kind(i + 1) == Some(TokenKind::Ident) => {
                let name = pf.code_text(i + 1).to_string();
                let module = scopes
                    .iter()
                    .filter(|s| matches!(s.kind, ScopeKind::Mod { .. }))
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
                    .join("::");
                let in_test_mod = scopes
                    .iter()
                    .any(|s| matches!(s.kind, ScopeKind::Mod { test: true }));
                let owner = scopes
                    .iter()
                    .rev()
                    .find(|s| matches!(s.kind, ScopeKind::Impl))
                    .map(|s| s.name.clone())
                    .filter(|s| !s.is_empty());
                fns.push(FnItem {
                    file: pf.path.clone(),
                    module,
                    owner,
                    name,
                    line: pf.code_line(i),
                    is_test: file_test || in_test_mod || attr_test,
                    body: 0..0,
                    calls: Vec::new(),
                    loops: Vec::new(),
                });
                attr_test = false;
                pending = Some(Pending::Fn {
                    item: fns.len() - 1,
                });
                i += 2;
                continue;
            }
            "for" | "while" | "loop" if paren_depth == 0 => {
                let in_impl_header = matches!(pending, Some(Pending::Impl { .. }));
                let hrtb = text == "for" && pf.code_text(i + 1) == "<";
                let in_fn = scopes
                    .iter()
                    .any(|s| matches!(s.kind, ScopeKind::Fn { .. }));
                if !in_impl_header && !hrtb && in_fn && !matches!(pending, Some(Pending::Fn { .. }))
                {
                    pending = Some(Pending::Loop);
                }
                i += 1;
                continue;
            }
            "(" | "[" => paren_depth += 1,
            ")" | "]" => paren_depth = (paren_depth - 1).max(0),
            ";" if paren_depth == 0 => {
                // A bodiless fn (trait method decl) or any other
                // statement boundary cancels whatever was pending, and
                // a `#[cfg(test)]` attached to a non-item statement
                // (`#[cfg(test)] use ...;`) stops waiting.
                pending = None;
                attr_test = false;
            }
            "{" => {
                if paren_depth > 0 {
                    // Closure/struct-literal braces inside argument
                    // lists: no scope, but consume the pending marker
                    // so a loop header's own brace cannot bind later.
                    if matches!(pending, Some(Pending::Loop)) {
                        pending = None;
                    }
                } else {
                    let (kind, name) = match pending.take() {
                        Some(Pending::Mod { name, test }) => (ScopeKind::Mod { test }, name),
                        Some(Pending::Impl { owner }) => {
                            (ScopeKind::Impl, owner.unwrap_or_default())
                        }
                        Some(Pending::Fn { item }) => (ScopeKind::Fn { item }, String::new()),
                        Some(Pending::Loop) => (ScopeKind::Loop, String::new()),
                        None => (ScopeKind::Block, String::new()),
                    };
                    scopes.push(Scope {
                        kind,
                        name,
                        open: i,
                    });
                }
            }
            "}" if paren_depth == 0 => {
                if let Some(scope) = scopes.pop() {
                    match scope.kind {
                        ScopeKind::Fn { item } => {
                            if let Some(f) = fns.get_mut(item) {
                                f.body = scope.open + 1..i;
                            }
                        }
                        ScopeKind::Loop => {
                            // Attach to the innermost enclosing fn.
                            let encl = scopes.iter().rev().find_map(|s| match s.kind {
                                ScopeKind::Fn { item } => Some(item),
                                _ => None,
                            });
                            if let Some(item) = encl {
                                if let Some(f) = fns.get_mut(item) {
                                    f.loops.push(scope.open + 1..i);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }

        // Call-site extraction, attributed to the innermost fn.
        if pf.code_kind(i) == Some(TokenKind::Ident) && !KEYWORDS.contains(&text) {
            let in_fn = scopes
                .iter()
                .rev()
                .find_map(|s| match s.kind {
                    ScopeKind::Fn { item } => Some(item),
                    _ => None,
                })
                .or(match pending {
                    Some(Pending::Fn { item }) => Some(item),
                    _ => None,
                });
            if let Some(item) = in_fn {
                if let Some(call) = call_at(pf, i) {
                    if let Some(f) = fns.get_mut(item) {
                        f.calls.push(call);
                    }
                }
            }
        }
        i += 1;
    }
    fns
}

/// Owner type of an `impl` header starting right after the `impl`
/// token: the last path segment (at angle depth 0, before `where`/`{`)
/// of the implemented-on type — the segment after `for` when present.
fn parse_impl_owner(pf: &ParsedFile, mut i: usize) -> Option<String> {
    let n = pf.code.len();
    let mut angle = 0i64;
    let mut last: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < n {
        let t = pf.code_text(i);
        match t {
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "{" | ";" if angle == 0 => break,
            "where" if angle == 0 => break,
            "for" if angle == 0 => saw_for = true,
            _ => {
                if angle == 0 && pf.code_kind(i) == Some(TokenKind::Ident) {
                    if saw_for {
                        after_for = Some(t.to_string());
                    } else {
                        last = Some(t.to_string());
                    }
                }
            }
        }
        i += 1;
    }
    after_for.or(last)
}

/// Is the ident at code-index `i` a call head? Handles `name(`,
/// `Qual::name(`, `.name(`, and turbofish `name::<T>(`.
fn call_at(pf: &ParsedFile, i: usize) -> Option<Call> {
    let name = pf.code_text(i).to_string();
    let next = pf.code_text(i + 1);
    let method = pf.code_text(i.wrapping_sub(1)) == ".";
    let qualifier = if !method
        && pf.code_text(i.wrapping_sub(1)) == ":"
        && pf.code_text(i.wrapping_sub(2)) == ":"
        && pf.code_kind(i.wrapping_sub(3)) == Some(TokenKind::Ident)
    {
        Some(pf.code_text(i.wrapping_sub(3)).to_string())
    } else {
        None
    };
    if next == "(" {
        return Some(Call {
            name,
            qualifier,
            method,
            line: pf.code_line(i),
        });
    }
    if next == "!" && pf.code_text(i + 2) == "(" {
        // Macro invocation: not a graph edge (macro bodies are scanned
        // textually by the passes), so not a call.
        return None;
    }
    // Turbofish: `name::<...>(`.
    if next == ":" && pf.code_text(i + 2) == ":" && pf.code_text(i + 3) == "<" {
        let mut depth = 0i64;
        let mut j = i + 3;
        let limit = (i + 64).min(pf.code.len());
        while j < limit {
            match pf.code_text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        if pf.code_text(j + 1) == "(" {
                            return Some(Call {
                                name,
                                qualifier,
                                method,
                                line: pf.code_line(i),
                            });
                        }
                        return None;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> (ParsedFile, Vec<FnItem>) {
        let pf = ParsedFile::new(path.to_string(), src.to_string());
        let fns = extract_fns(&pf);
        (pf, fns)
    }

    #[test]
    fn extracts_fns_with_modules_and_owners() {
        let src = "
            pub fn top() {}
            mod inner {
                impl Widget {
                    pub fn method(&self) {}
                }
                impl std::fmt::Display for Gadget {
                    fn fmt(&self) {}
                }
            }
        ";
        let (_, fns) = parse("crates/x/src/lib.rs", src);
        let quals: Vec<String> = fns.iter().map(|f| f.qual()).collect();
        assert_eq!(
            quals,
            ["top", "inner::Widget::method", "inner::Gadget::fmt"]
        );
        assert!(fns.iter().all(|f| !f.is_test));
    }

    #[test]
    fn marks_cfg_test_modules_and_test_fns() {
        let src = "
            fn lib() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
            #[cfg(not(test))]
            mod real { fn deployed() {} }
            #[test]
            fn top_level_case() {}
        ";
        let (_, fns) = parse("crates/x/src/lib.rs", src);
        let tests: Vec<(&str, bool)> = fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(
            tests,
            [
                ("lib", false),
                ("helper", true),
                ("case", true),
                ("deployed", false),
                ("top_level_case", true)
            ]
        );
    }

    #[test]
    fn files_under_tests_are_test_code() {
        let (_, fns) = parse("crates/x/tests/t.rs", "fn probe() {}");
        assert!(fns[0].is_test);
    }

    #[test]
    fn records_calls_with_qualifiers_and_methods() {
        let src = "
            fn caller() {
                helper(1);
                Widget::build(2);
                value.refresh();
                path::to::thing();
                parse::<u32>(s);
                not_a_call;
                if cond(x) {}
            }
        ";
        let (_, fns) = parse("crates/x/src/lib.rs", src);
        let calls: Vec<(&str, Option<&str>, bool)> = fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.qualifier.as_deref(), c.method))
            .collect();
        assert_eq!(
            calls,
            [
                ("helper", None, false),
                ("build", Some("Widget"), false),
                ("refresh", None, true),
                ("thing", Some("to"), false),
                ("parse", None, false),
                ("cond", None, false),
            ]
        );
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let src = "fn f() { println!(\"x\"); vec![1]; assert!(g()); }";
        let (_, fns) = parse("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["g"]);
    }

    #[test]
    fn loop_bodies_are_recorded() {
        let src = "
            fn f(xs: &[u32]) {
                for x in xs { touch(x); }
                while go() { step(); }
                loop { spin(); break; }
            }
            impl Iterator for Thing { fn next(&mut self) {} }
        ";
        let (pf, fns) = parse("crates/x/src/lib.rs", src);
        assert_eq!(fns[0].loops.len(), 3);
        // `impl Iterator for Thing` must NOT be a loop body.
        assert_eq!(fns[1].loops.len(), 0);
        // Loop ranges cover the right calls.
        let in_first_loop: Vec<&str> = fns[0].loops[0]
            .clone()
            .filter_map(|ci| {
                let t = pf.code_text(ci);
                if t == "touch" {
                    Some("touch")
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(in_first_loop, ["touch"]);
    }

    #[test]
    fn array_semicolons_do_not_cancel_fn_bodies() {
        let src = "fn f(x: [u8; 32]) { inner(); }";
        let (_, fns) = parse("crates/x/src/lib.rs", src);
        assert_eq!(fns[0].calls.len(), 1);
        assert!(!fns[0].body.is_empty());
    }

    #[test]
    fn trait_method_decls_have_no_body() {
        let src = "trait T { fn decl(&self); fn with_default(&self) { work(); } }";
        let (_, fns) = parse("crates/x/src/lib.rs", src);
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_empty());
        assert_eq!(fns[1].calls.len(), 1);
    }

    #[test]
    fn calls_inside_closure_args_belong_to_the_fn() {
        let src = "fn f(xs: &[u32]) { xs.iter().map(|x| transform(x)).sum::<u32>(); }";
        let (_, fns) = parse("crates/x/src/lib.rs", src);
        let names: Vec<&str> = fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"transform"), "{names:?}");
        assert!(names.contains(&"sum"), "{names:?}");
    }
}
