//! The interprocedural passes.
//!
//! All three passes run over the same substrate: the function
//! inventory ([`crate::items`]), the call graph ([`crate::graph`]),
//! and the reachable set computed from the **sink roots** — the
//! functions whose output the paper's evaluation promises is
//! bit-identical across runs (`solve_placement*`, `simulate*`,
//! `round_solution`, and the snapshot writers).
//!
//! 1. **determinism-taint** — a nondeterminism *source* (wall clock,
//!    hash-order iteration, unseeded RNG, thread identity, env/fs
//!    reads) inside any function transitively reachable from a root
//!    taints everything the root produces. Sources are recognized
//!    token-sequence patterns; the finding carries the shortest call
//!    chain from the root as evidence.
//! 2. **panic-reachable** — the interprocedural upgrade of the textual
//!    `no-panic-hot-path` rule: instead of a hand-maintained module
//!    list, any `panic!`/`unreachable!`/`todo!`/`.unwrap()`/`.expect(`
//!    in a reachable function is a finding. `.expect(` with a byte
//!    literal argument is recognized as the JSON cursor's fallible
//!    `expect(b'[')` *method* and skipped.
//! 3. **alloc-in-hot-loop** — inside the PR 2/3 allocation-free-scope
//!    modules, loop bodies of reachable functions must not allocate
//!    (`Vec::new`, `vec![]`, `.push`, `.collect`, `.to_vec`,
//!    `.clone`, `.extend`, `Box::new`, `String` construction).
//!
//! Escapes, in order of preference: a `// lint:allow(<rule>): <why>`
//! annotation on the offending line (shared with the textual layer),
//! an entry in the [`BLESSED`] function allowlist, or — for accepted
//! pre-existing debt — the checked-in baseline file.

use crate::allows::Allows;
use crate::graph::Reachability;
use crate::items::{FnItem, ParsedFile};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::rules::alloc_free_scope;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A nondeterminism source: finding kind, token pattern, and the allow
/// rule names (besides `determinism-taint`) that bless it, shared with
/// the textual layer.
const TAINT_SOURCES: &[(&str, &[&str], &str)] = &[
    ("wall-clock", &["Instant", ":", ":", "now"], "wall-clock"),
    ("wall-clock", &["SystemTime"], "wall-clock"),
    ("hash-order", &["HashMap"], "nondeterministic-map"),
    ("hash-order", &["HashSet"], "nondeterministic-map"),
    ("unseeded-rng", &["thread_rng"], ""),
    ("unseeded-rng", &["from_entropy"], ""),
    ("unseeded-rng", &["OsRng"], ""),
    ("thread-id", &["thread", ":", ":", "current"], ""),
    ("env-read", &["env", ":", ":", "var"], ""),
    ("env-read", &["env", ":", ":", "vars"], ""),
    ("fs-read", &["fs", ":", ":", "read"], ""),
    ("fs-read", &["fs", ":", ":", "read_to_string"], ""),
    ("fs-read", &["fs", ":", ":", "read_dir"], ""),
    ("fs-read", &["File", ":", ":", "open"], ""),
];

/// Panic-shaped token patterns. `.expect(` is handled separately for
/// the byte-literal-argument refinement.
const PANIC_PATTERNS: &[(&str, &[&str])] = &[
    ("panic", &["panic", "!"]),
    ("unreachable", &["unreachable", "!"]),
    ("todo", &["todo", "!"]),
    ("unimplemented", &["unimplemented", "!"]),
    ("unwrap", &[".", "unwrap", "(", ")"]),
];

/// Allocation-shaped token patterns for loop bodies.
const ALLOC_PATTERNS: &[(&str, &[&str])] = &[
    ("vec-new", &["Vec", ":", ":", "new"]),
    ("vec-with-capacity", &["Vec", ":", ":", "with_capacity"]),
    ("vec-macro", &["vec", "!"]),
    ("push", &[".", "push", "("]),
    ("collect", &[".", "collect", "("]),
    ("collect", &[".", "collect", ":", ":"]),
    ("to-vec", &[".", "to_vec", "("]),
    ("clone", &[".", "clone", "("]),
    ("extend", &[".", "extend", "("]),
    ("box-new", &["Box", ":", ":", "new"]),
    ("string-new", &["String", ":", ":", "new"]),
    ("to-string", &[".", "to_string", "("]),
    ("to-owned", &[".", "to_owned", "("]),
];

/// The blessed-function allowlist: (function simple name, rule, kind
/// or "*", justification). An entry silences matching findings in that
/// function *with a reviewed reason* — unlike the baseline, which only
/// freezes debt. Keep this table short and each entry defensible; it
/// is rendered into the README's sources/sinks table.
pub const BLESSED: &[(&str, &str, &str, &str)] = &[
    (
        "solve_fractional_driven",
        "determinism-taint",
        "wall-clock",
        "solver wall time is reported in EpfStats and never feeds back into the optimization",
    ),
    (
        "read_snapshot",
        "determinism-taint",
        "fs-read",
        "checkpoint/snapshot reads are part of the solver's declared input, not ambient state",
    ),
    (
        "read_all",
        "determinism-taint",
        "fs-read",
        "the single raw-read site every snapshot reader funnels through; it consults the \
         injectable fault schedule first, and reads are declared input, not ambient state",
    ),
    (
        "read_json_snapshot",
        "determinism-taint",
        "fs-read",
        "checkpoint/snapshot reads are part of the solver's declared input, not ambient state",
    ),
];

fn blessed(fn_name: &str, rule: &str, kind: &str) -> bool {
    BLESSED
        .iter()
        .any(|(f, r, k, _)| *f == fn_name && *r == rule && (*k == "*" || *k == kind))
}

/// Output of the pass runner: findings plus which annotations were
/// consumed, keyed by (file, annotation line).
#[derive(Debug, Default)]
pub struct PassOutput {
    pub findings: Vec<Finding>,
    pub consumed_allows: BTreeSet<(String, usize)>,
}

/// Find every occurrence of `pat` (token texts) within `range` of the
/// file's code tokens; yields the code index of the first token.
fn match_seq(pf: &ParsedFile, range: &std::ops::Range<usize>, pat: &[&str]) -> Vec<usize> {
    let mut hits = Vec::new();
    if pat.is_empty() || range.end < pat.len() {
        return hits;
    }
    for i in range.start..=(range.end - pat.len()) {
        if (0..pat.len()).all(|k| pf.code_text(i + k) == pat[k]) {
            hits.push(i);
        }
    }
    hits
}

/// Run all three interprocedural passes.
pub fn run_passes(
    files: &BTreeMap<String, ParsedFile>,
    allows: &BTreeMap<String, Allows>,
    fns: &[FnItem],
    reach: &Reachability,
) -> PassOutput {
    let mut out = PassOutput::default();
    let no_allows = Allows::default();

    for fn_idx in reach.iter() {
        let f = &fns[fn_idx];
        let Some(pf) = files.get(&f.file) else {
            continue;
        };
        let file_allows = allows.get(&f.file).unwrap_or(&no_allows);
        let chain = reach.chain(fns, fn_idx);

        // Pass 1: determinism taint.
        for (kind, pat, extra_allow) in TAINT_SOURCES {
            for hit in match_seq(pf, &f.body, pat) {
                let line = pf.code_line(hit);
                let mut consumed = false;
                for rule in ["determinism-taint", *extra_allow] {
                    if !rule.is_empty() && file_allows.is_blessed(line, rule) {
                        if let Some(site) =
                            file_allows.blessed_for_line(line).find(|s| s.rule == rule)
                        {
                            out.consumed_allows.insert((f.file.clone(), site.line));
                        }
                        consumed = true;
                    }
                }
                if consumed || blessed(&f.name, "determinism-taint", kind) {
                    continue;
                }
                out.findings.push(Finding {
                    rule: "determinism-taint",
                    kind: (*kind).to_string(),
                    file: f.file.clone(),
                    line,
                    function: f.qual(),
                    chain: chain.clone(),
                    message: format!(
                        "nondeterminism source `{}` reaches deterministic sink `{}` via {}; \
                         placements/reports must be byte-identical for identical seeds — \
                         plumb the value in as explicit input, or bless the function",
                        pat.join(""),
                        chain.first().map(String::as_str).unwrap_or("?"),
                        chain.join(" -> "),
                    ),
                });
            }
        }

        // Pass 2: interprocedural panic reachability.
        let mut panic_hits: Vec<(&str, usize)> = Vec::new();
        for (kind, pat) in PANIC_PATTERNS {
            for hit in match_seq(pf, &f.body, pat) {
                panic_hits.push((kind, hit));
            }
        }
        // `.expect(` — skip byte-literal arguments (the JSON cursor's
        // fallible `expect(b'[')` method, not Option/Result::expect).
        for hit in match_seq(pf, &f.body, &[".", "expect", "("]) {
            if pf.code_kind(hit + 3) == Some(TokenKind::Char) {
                continue;
            }
            panic_hits.push(("expect", hit));
        }
        panic_hits.sort_by_key(|&(_, h)| h);
        for (kind, hit) in panic_hits {
            let line = pf.code_line(hit);
            let mut consumed = false;
            for rule in ["panic-reachable", "no-panic-hot-path"] {
                if file_allows.is_blessed(line, rule) {
                    if let Some(site) = file_allows.blessed_for_line(line).find(|s| s.rule == rule)
                    {
                        out.consumed_allows.insert((f.file.clone(), site.line));
                    }
                    consumed = true;
                }
            }
            if consumed || blessed(&f.name, "panic-reachable", kind) {
                continue;
            }
            out.findings.push(Finding {
                rule: "panic-reachable",
                kind: kind.to_string(),
                file: f.file.clone(),
                line,
                function: f.qual(),
                chain: chain.clone(),
                message: format!(
                    "`{kind}` can tear down a run of `{}` (call chain: {}); degrade with \
                     typed errors instead, or justify the invariant with \
                     lint:allow(no-panic-hot-path)",
                    chain.first().map(String::as_str).unwrap_or("?"),
                    chain.join(" -> "),
                ),
            });
        }

        // Pass 3: alloc-in-hot-loop, restricted to the PR 2/3
        // allocation-free modules.
        if !alloc_free_scope(&f.file) {
            continue;
        }
        let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
        for lp in &f.loops {
            for (kind, pat) in ALLOC_PATTERNS {
                for hit in match_seq(pf, lp, pat) {
                    let line = pf.code_line(hit);
                    if !seen.insert(((*kind).to_string(), line)) {
                        continue; // nested loop ranges overlap
                    }
                    if file_allows.is_blessed(line, "alloc-in-hot-loop") {
                        if let Some(site) = file_allows
                            .blessed_for_line(line)
                            .find(|s| s.rule == "alloc-in-hot-loop")
                        {
                            out.consumed_allows.insert((f.file.clone(), site.line));
                        }
                        continue;
                    }
                    if blessed(&f.name, "alloc-in-hot-loop", kind) {
                        continue;
                    }
                    out.findings.push(Finding {
                        rule: "alloc-in-hot-loop",
                        kind: (*kind).to_string(),
                        file: f.file.clone(),
                        line,
                        function: f.qual(),
                        chain: chain.clone(),
                        message: format!(
                            "`{kind}` allocates inside a loop body of hot-path function \
                             `{}` (reachable via {}); hoist the buffer out of the loop or \
                             annotate with lint:allow(alloc-in-hot-loop)",
                            f.qual(),
                            chain.join(" -> "),
                        ),
                    });
                }
            }
        }
    }
    out
}
