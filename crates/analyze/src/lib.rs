//! `vod-analyze` — token-level interprocedural static analysis for the
//! VoD placement workspace.
//!
//! The paper's evaluation rests on runs being *reproducible*: identical
//! inputs and seeds must yield byte-identical placements, simulation
//! reports, and snapshots. `cargo xtask lint` enforces a first line of
//! defense with per-line textual rules; this crate is the second line —
//! a real lexer, a function inventory with an approximate call graph,
//! and interprocedural passes that track nondeterminism sources,
//! panics, and hot-loop allocations all the way to the sinks the
//! evaluation depends on.
//!
//! Pipeline (see DESIGN.md §8):
//!
//! ```text
//! source text ──lex──▶ tokens ──views──▶ code/comment masks
//!      │                  │
//!      │                  └─extract_fns─▶ fn inventory ─▶ call graph
//!      │                                                     │
//!      └─scan_allows─▶ lint:allow sites                 reachability
//!                            │                               │
//!                            ▼                               ▼
//!                   passes: determinism-taint · panic-reachable ·
//!                           alloc-in-hot-loop · stale-allow
//!                            │
//!                            ▼
//!              findings ──diff──▶ results/ANALYZE_baseline.json
//! ```
//!
//! Zero dependencies by design: the analyzer is part of the build's
//! trusted base and must itself be trivially auditable and fast.

pub mod allows;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod rules;
pub mod textual;

use std::collections::{BTreeMap, BTreeSet};

pub use report::Finding;

/// The deterministic-output sinks: every function transitively called
/// from one of these must be free of nondeterminism sources and
/// panics. Solver entry points (plain, checkpointed, resumable),
/// simulator entry points, LP rounding, and the snapshot writers.
pub const DEFAULT_ROOTS: [&str; 13] = [
    "solve_placement",
    "solve_placement_checkpointed",
    "solve_resumable",
    "solve_fractional_checkpointed",
    "solve_fractional_resumable",
    "resolve_from",
    "simulate",
    "simulate_with_final",
    "simulate_batch",
    "round_solution",
    "write_atomic",
    "write_snapshot_atomic",
    "write_json_snapshot",
];

/// One input file: workspace-relative `/`-separated path + contents.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub content: String,
}

/// Analysis summary alongside the findings, for reporting.
#[derive(Debug)]
pub struct AnalyzeResult {
    pub findings: Vec<Finding>,
    /// Total non-test functions in the inventory.
    pub fn_count: usize,
    /// Functions reachable from the sink roots.
    pub reachable_count: usize,
    /// Files scanned (non-exempt `.rs`).
    pub file_count: usize,
}

/// Run the full analysis over a set of source files.
///
/// `roots` are sink-root function names ([`DEFAULT_ROOTS`] for the real
/// workspace; tests pass their own). Findings come back sorted by
/// (file, line, rule, kind) — deterministically, like everything else
/// here.
pub fn analyze_sources(sources: &[SourceFile], roots: &[&str]) -> AnalyzeResult {
    let mut files: BTreeMap<String, items::ParsedFile> = BTreeMap::new();
    let mut allow_map: BTreeMap<String, allows::Allows> = BTreeMap::new();
    for s in sources {
        if !s.path.ends_with(".rs") || rules::exempt_path(&s.path) {
            continue;
        }
        allow_map.insert(s.path.clone(), allows::scan_allows(&s.content));
        files.insert(
            s.path.clone(),
            items::ParsedFile::new(s.path.clone(), s.content.clone()),
        );
    }

    // Function inventory + call graph over the whole workspace.
    let mut fns: Vec<items::FnItem> = Vec::new();
    for pf in files.values() {
        fns.extend(items::extract_fns(pf));
    }
    let cg = graph::CallGraph::build(&fns);
    let reach = cg.reachable_from(roots);

    // Interprocedural passes.
    let pass_out = passes::run_passes(&files, &allow_map, &fns, &reach);
    let mut findings = pass_out.findings;

    // Textual layer, run for its allow-consumption record (its own
    // findings stay the domain of `cargo xtask lint`).
    let mut textual_consumed: BTreeSet<(String, usize)> = BTreeSet::new();
    for (path, pf) in &files {
        let out = textual::lint_file_full(path, &pf.content);
        for line in out.consumed_allows {
            textual_consumed.insert((path.clone(), line));
        }
    }

    // Stale-allow audit: annotations neither layer consumed, plus
    // malformed annotations. Test code is exempt end to end.
    for (path, al) in &allow_map {
        if rules::test_only_file(path) {
            continue;
        }
        for err in &al.errors {
            findings.push(Finding {
                rule: "stale-allow",
                kind: "malformed".to_string(),
                file: path.clone(),
                line: err.line,
                function: enclosing_fn(&fns, path, err.line)
                    .map(items::FnItem::qual)
                    .unwrap_or_else(|| "-".to_string()),
                chain: Vec::new(),
                message: format!("malformed lint:allow annotation: {}", err.message),
            });
        }
        for site in &al.sites {
            let consumed = pass_out
                .consumed_allows
                .contains(&(path.clone(), site.line))
                || textual_consumed.contains(&(path.clone(), site.line));
            if consumed {
                continue;
            }
            if let Some(f) = enclosing_fn(&fns, path, site.target_line) {
                if f.is_test {
                    continue;
                }
            }
            findings.push(Finding {
                rule: "stale-allow",
                kind: format!("unused-{}", site.rule),
                file: path.clone(),
                line: site.line,
                function: enclosing_fn(&fns, path, site.target_line)
                    .map(items::FnItem::qual)
                    .unwrap_or_else(|| "-".to_string()),
                chain: Vec::new(),
                message: format!(
                    "lint:allow({}) suppresses nothing: no rule fires on its target line \
                     any more — delete the annotation (justification was: {:?})",
                    site.rule, site.justification
                ),
            });
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.kind).cmp(&(&b.file, b.line, b.rule, &b.kind))
    });

    AnalyzeResult {
        findings,
        fn_count: fns.iter().filter(|f| !f.is_test).count(),
        reachable_count: reach.len(),
        file_count: files.len(),
    }
}

/// Innermost function in `path` whose extent covers 1-based `line`.
fn enclosing_fn<'f>(
    fns: &'f [items::FnItem],
    path: &str,
    line: usize,
) -> Option<&'f items::FnItem> {
    fns.iter()
        .filter(|f| f.file == path && f.line <= line && !f.body.is_empty())
        .max_by_key(|f| f.line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, content: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            content: content.to_string(),
        }
    }

    #[test]
    fn taint_flows_through_the_call_graph() {
        let files = [src(
            "crates/x/src/lib.rs",
            "pub fn entry() { helper(); }
             fn helper() { deep(); }
             fn deep() { let t = std::time::Instant::now(); use_it(t); }
             fn unreached() { let t = std::time::Instant::now(); use_it(t); }",
        )];
        let r = analyze_sources(&files, &["entry"]);
        let taints: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "determinism-taint")
            .collect();
        assert_eq!(taints.len(), 1, "{:?}", r.findings);
        assert_eq!(taints[0].function, "deep");
        assert_eq!(taints[0].chain, ["entry", "helper", "deep"]);
        assert_eq!(taints[0].kind, "wall-clock");
    }

    #[test]
    fn allow_annotation_blesses_taint() {
        let files = [src(
            "crates/x/src/lib.rs",
            "pub fn entry() {
                 // lint:allow(determinism-taint): time is display-only here
                 let t = std::time::Instant::now();
                 show(t);
             }",
        )];
        let r = analyze_sources(&files, &["entry"]);
        assert!(
            r.findings.iter().all(|f| f.rule != "determinism-taint"),
            "{:?}",
            r.findings
        );
        // ... and the annotation counts as consumed, not stale.
        assert!(
            r.findings.iter().all(|f| f.rule != "stale-allow"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn unconsumed_allow_is_stale() {
        let files = [src(
            "crates/x/src/lib.rs",
            "pub fn entry() {
                 // lint:allow(wall-clock): leftover from a deleted timer
                 let x = 1;
                 sink(x);
             }",
        )];
        let r = analyze_sources(&files, &["entry"]);
        let stale: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "stale-allow")
            .collect();
        assert_eq!(stale.len(), 1, "{:?}", r.findings);
        assert_eq!(stale[0].kind, "unused-wall-clock");
        assert_eq!(stale[0].function, "entry");
    }

    #[test]
    fn panic_reachability_is_interprocedural() {
        let files = [
            src(
                "crates/x/src/lib.rs",
                "pub fn entry() { crate::util::narrow(7); }",
            ),
            src(
                "crates/x/src/util.rs",
                "pub fn narrow(v: u64) -> u32 { u32::try_from(v).unwrap() }",
            ),
        ];
        let r = analyze_sources(&files, &["entry"]);
        let panics: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == "panic-reachable")
            .collect();
        assert_eq!(panics.len(), 1, "{:?}", r.findings);
        assert_eq!(panics[0].file, "crates/x/src/util.rs");
        assert_eq!(panics[0].kind, "unwrap");
    }

    #[test]
    fn alloc_pass_only_fires_in_hot_scope_loops() {
        let body = "pub fn entry(xs: &[u32]) {
                        let mut out = Vec::new();
                        for x in xs { out.push(*x); }
                    }";
        let hot = analyze_sources(&[src("crates/core/src/pool.rs", body)], &["entry"]);
        let cold = analyze_sources(&[src("crates/ops/src/lib.rs", body)], &["entry"]);
        assert!(
            hot.findings
                .iter()
                .any(|f| f.rule == "alloc-in-hot-loop" && f.kind == "push"),
            "{:?}",
            hot.findings
        );
        // The Vec::new outside the loop must NOT be flagged.
        assert!(
            hot.findings.iter().all(|f| f.kind != "vec-new"),
            "{:?}",
            hot.findings
        );
        assert!(
            cold.findings.iter().all(|f| f.rule != "alloc-in-hot-loop"),
            "{:?}",
            cold.findings
        );
    }

    #[test]
    fn test_functions_are_invisible_to_the_passes() {
        let files = [src(
            "crates/x/src/lib.rs",
            "pub fn entry() { helper(); }
             fn helper() {}
             #[cfg(test)]
             mod tests {
                 #[test]
                 fn case() { let t = std::time::Instant::now(); drop(t); }
             }",
        )];
        let r = analyze_sources(&files, &["entry"]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn exempt_paths_are_skipped_entirely() {
        let files = [src(
            "crates/shims/rand/src/lib.rs",
            "pub fn entry() { let t = std::time::Instant::now(); drop(t); }",
        )];
        let r = analyze_sources(&files, &["entry"]);
        assert_eq!(r.file_count, 0);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn blessed_function_table_silences_matching_kind_only() {
        let files = [src(
            "crates/x/src/lib.rs",
            "pub fn solve_fractional_driven() {
                 let start = std::time::Instant::now();
                 let map = std::collections::HashMap::new();
                 consume(start, map);
             }",
        )];
        let r = analyze_sources(&files, &["solve_fractional_driven"]);
        // wall-clock is blessed for this function; hash-order is not.
        assert!(
            r.findings
                .iter()
                .all(|f| !(f.rule == "determinism-taint" && f.kind == "wall-clock")),
            "{:?}",
            r.findings
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "determinism-taint" && f.kind == "hash-order"),
            "{:?}",
            r.findings
        );
    }
}
