//! `// lint:allow(<rule>): <justification>` annotation scanning.
//!
//! Annotations are parsed from the **comment view** (an "annotation"
//! inside a string literal is inert) and bless exactly one code line:
//! the same line when code precedes the comment, otherwise the next
//! line that carries any code. The justification is mandatory; its
//! absence, an unclosed annotation, or an unknown rule name are
//! malformed-annotation errors the caller reports as findings.

use crate::lexer::{code_view, comment_view, lex};
use crate::rules::is_known_rule;

/// One well-formed annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// 1-based line of the annotation comment itself.
    pub line: usize,
    /// 1-based line of the code line it blesses (0 when it dangles at
    /// end of file with no code after it).
    pub target_line: usize,
    pub rule: String,
    pub justification: String,
}

/// One malformed annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowError {
    pub line: usize,
    pub message: String,
}

/// Scan result for one file.
#[derive(Debug, Default)]
pub struct Allows {
    pub sites: Vec<AllowSite>,
    pub errors: Vec<AllowError>,
}

impl Allows {
    /// Rules blessed for a given 1-based code line.
    pub fn blessed_for_line(&self, line: usize) -> impl Iterator<Item = &AllowSite> {
        self.sites.iter().filter(move |s| s.target_line == line)
    }

    /// Whether `rule` is blessed on `line`.
    pub fn is_blessed(&self, line: usize, rule: &str) -> bool {
        self.blessed_for_line(line).any(|s| s.rule == rule)
    }
}

/// Parse every annotation in `content` and resolve its target line.
pub fn scan_allows(content: &str) -> Allows {
    let tokens = lex(content);
    let comments = comment_view(content, &tokens);
    let code = code_view(content, &tokens);
    let mut out = Allows::default();

    // Pending annotations waiting for the next code line.
    let mut pending: Vec<AllowSite> = Vec::new();
    for (idx, (comment_line, code_line)) in comments.lines().zip(code.lines()).enumerate() {
        let lineno = idx + 1;
        let mut rest = comment_line;
        while let Some(start) = rest.find("lint:allow(") {
            let tail = &rest[start + "lint:allow(".len()..];
            match parse_one(tail) {
                Ok((rule, justification, consumed)) => {
                    pending.push(AllowSite {
                        line: lineno,
                        target_line: 0,
                        rule,
                        justification,
                    });
                    rest = &tail[consumed.min(tail.len())..];
                }
                Err(message) => {
                    out.errors.push(AllowError {
                        line: lineno,
                        message,
                    });
                    rest = &tail[tail.len()..];
                }
            }
        }
        if !code_line.trim().is_empty() {
            for mut site in pending.drain(..) {
                site.target_line = lineno;
                out.sites.push(site);
            }
        }
    }
    // Dangling annotations at end of file keep target_line == 0.
    out.sites.extend(pending);
    out
}

/// Parse one annotation body starting right after `lint:allow(`.
/// Returns (rule, justification, bytes consumed on success).
fn parse_one(tail: &str) -> Result<(String, String, usize), String> {
    let Some(close) = tail.find(')') else {
        return Err("unclosed lint:allow(...)".to_string());
    };
    let rule = tail[..close].trim();
    if !is_known_rule(rule) {
        return Err(format!(
            "unknown lint rule {rule:?} (known: {})",
            crate::rules::known_rules_joined()
        ));
    }
    let after = tail[close + 1..].trim_start();
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(format!(
            "lint:allow({rule}) requires a justification: `// lint:allow({rule}): <why>`"
        ));
    }
    Ok((rule.to_string(), justification.to_string(), close + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_annotation_targets_its_own_line() {
        let a = scan_allows("let t = now(); // lint:allow(wall-clock): display only\n");
        assert_eq!(a.sites.len(), 1);
        assert_eq!((a.sites[0].line, a.sites[0].target_line), (1, 1));
        assert_eq!(a.sites[0].rule, "wall-clock");
    }

    #[test]
    fn comment_line_annotation_targets_next_code_line() {
        let src = "// lint:allow(no-panic-hot-path): proven in bounds\n\
                   // continuation of the explanation.\n\
                   let x = v.unwrap();\n";
        let a = scan_allows(src);
        assert_eq!(a.sites.len(), 1);
        assert_eq!((a.sites[0].line, a.sites[0].target_line), (1, 3));
        assert!(a.is_blessed(3, "no-panic-hot-path"));
        assert!(!a.is_blessed(3, "wall-clock"));
    }

    #[test]
    fn analyzer_rules_parse_too() {
        let src =
            "// lint:allow(alloc-in-hot-loop): buffer reserved ahead of the loop\nx.push(1);\n";
        let a = scan_allows(src);
        assert_eq!(a.sites.len(), 1);
        assert!(a.errors.is_empty());
        assert!(a.is_blessed(2, "alloc-in-hot-loop"));
    }

    #[test]
    fn malformed_annotations_error() {
        let a = scan_allows("// lint:allow(wall-clock)\nlet t = now();\n");
        assert_eq!(a.errors.len(), 1);
        assert!(a.errors[0].message.contains("requires a justification"));
        let b = scan_allows("// lint:allow(no-such-rule): whatever\n");
        assert_eq!(b.errors.len(), 1);
        assert!(b.errors[0].message.contains("unknown lint rule"));
        let c = scan_allows("// lint:allow(wall-clock\n");
        assert_eq!(c.errors.len(), 1);
        assert!(c.errors[0].message.contains("unclosed"));
    }

    #[test]
    fn annotation_in_string_literal_is_inert() {
        let a = scan_allows("let s = \"lint:allow(wall-clock): nope\";\n");
        assert!(a.sites.is_empty());
        assert!(a.errors.is_empty());
    }
}
