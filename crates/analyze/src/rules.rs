//! The shared rule registry and path-scope tables.
//!
//! Both layers of the static-analysis stack consult this module: the
//! textual per-line rules hosted in `cargo xtask lint` (which re-uses
//! the scope predicates) and the interprocedural passes in this crate.
//! Keeping the registry in one place means `lint:allow(<rule>)`
//! annotations for *either* layer parse everywhere, and an annotation
//! naming an unknown rule is a finding instead of a silent no-op.

/// The ten textual rules enforced by `cargo xtask lint`.
pub const TEXTUAL_RULES: [&str; 10] = [
    "nondeterministic-map",
    "nan-unwrap-cmp",
    "wall-clock",
    "raw-index",
    "vec-vec-f64",
    "dyn-dispatch",
    "no-panic-hot-path",
    "snapshot-io",
    "io-fault-shim",
    "sleep-timer",
];

/// The interprocedural rules enforced by `cargo xtask analyze`.
pub const ANALYZER_RULES: [&str; 4] = [
    "determinism-taint",
    "panic-reachable",
    "alloc-in-hot-loop",
    "stale-allow",
];

/// Every rule name a `lint:allow(...)` annotation may legally name.
pub fn is_known_rule(name: &str) -> bool {
    TEXTUAL_RULES.contains(&name) || ANALYZER_RULES.contains(&name)
}

pub fn known_rules_joined() -> String {
    let mut all: Vec<&str> = TEXTUAL_RULES.to_vec();
    all.extend_from_slice(&ANALYZER_RULES);
    all.join(", ")
}

// ---------------------------------------------------------------------
// Path scopes (workspace-relative, `/`-separated paths).
// ---------------------------------------------------------------------

/// Paths no analysis layer ever scans: vendored third-party shims, the
/// tooling crates themselves (whose rule tables and test fixtures
/// deliberately spell forbidden patterns), and build output.
pub fn exempt_path(path: &str) -> bool {
    path.starts_with("crates/shims/")
        || path.starts_with("crates/xtask/")
        || path.starts_with("crates/analyze/")
        || path.starts_with("target/")
}

/// Crates whose *library* code must use deterministic containers.
pub fn deterministic_container_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/sim/src/")
        || path.starts_with("crates/trace/src/")
}

/// Crates allowed to read wall-clock time freely (experiment timing).
pub fn wall_clock_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/")
}

/// Crates allowed to construct `VhoId`s from raw integers: the id
/// newtypes live in `vod-model`, and `vod-net` builds topologies.
pub fn raw_index_exempt(path: &str) -> bool {
    path.starts_with("crates/model/") || path.starts_with("crates/net/")
}

/// Crates that write durable artifacts (state snapshots, solver
/// checkpoints, `results/*.json`): every write must go through
/// `vod_json::snapshot::write_atomic` (or the snapshot helpers built
/// on it) so an interrupted process leaves either the old complete
/// file or the new one, never a torn half-write.
pub fn snapshot_io_scope(path: &str) -> bool {
    path.starts_with("crates/json/src/")
        || path.starts_with("crates/ops/src/")
        || path.starts_with("crates/bench/src/")
}

/// Crates whose snapshot I/O must stay *observable by the fault shim*
/// (`vod_json::faults`): every durable read and write routes through
/// the `vod_json::snapshot` helpers, whose single raw-I/O sites
/// consult the shim's seeded schedule — so injected ENOSPC, torn
/// writes and read-EIO faults exercise exactly the code paths real
/// disk trouble would. Unlike [`snapshot_io_scope`] this excludes
/// `crates/bench`: the drill harnesses tear and corrupt files
/// *deliberately*, simulating external damage the shim must not see.
pub fn io_fault_shim_scope(path: &str) -> bool {
    path.starts_with("crates/json/src/") || path.starts_with("crates/ops/src/")
}

/// The only sanctioned sleep sites. The supervisors' determinism
/// contract is that backoff is *recorded*, never slept
/// (`vod_ops::recorded_backoff`); the single real `thread::sleep` in
/// the workspace is `deployment_sleep` in the recorded-backoff module.
/// The bench harness is also exempt: it times and paces real work by
/// design (same rationale as [`wall_clock_exempt`]).
pub fn sleep_timer_exempt(path: &str) -> bool {
    path == "crates/ops/src/supervise.rs" || path.starts_with("crates/bench/")
}

/// Whether a path is test-only code (integration tests, benches).
pub fn test_only_file(path: &str) -> bool {
    path.contains("/tests/") || path.starts_with("tests/") || path.contains("/benches/")
}

/// Solver hot-path modules where nested `Vec<Vec<f64>>` matrices are
/// forbidden (flat row-major buffers only — see
/// `crates/core/src/penalty.rs` and DESIGN.md "Solver performance
/// architecture"). `direct.rs` is excluded: the simplex baseline is
/// deliberately not a hot path.
pub fn flat_buffer_scope(path: &str) -> bool {
    const HOT: [&str; 9] = [
        "block.rs",
        "epf.rs",
        "kernel.rs",
        "penalty.rs",
        "pool.rs",
        "potential.rs",
        "rounding.rs",
        "shard.rs",
        "solution.rs",
    ];
    path.strip_prefix("crates/core/src/")
        .is_some_and(|f| HOT.contains(&f))
        || sim_hot_path_scope(path)
}

/// Simulator hot-path modules where heap-boxed trait objects (and
/// nested matrices) are forbidden: the per-event loop must stay
/// monomorphized and allocation-free (see the `CacheImpl` enum in
/// `crates/sim/src/cache.rs` and DESIGN.md "Simulator performance
/// architecture").
pub fn sim_hot_path_scope(path: &str) -> bool {
    const HOT: [&str; 4] = ["batch.rs", "cache.rs", "engine.rs", "faults.rs"];
    path.strip_prefix("crates/sim/src/")
        .is_some_and(|f| HOT.contains(&f))
}

/// Modules reachable from `vod_sim::simulate` or
/// `vod_core::solve_placement` at run time, per the hand-maintained
/// textual list. The interprocedural `panic-reachable` pass supersedes
/// this with real call-graph reachability; the textual rule keeps the
/// list so `cargo xtask lint` stays dependency-light and instant.
pub fn no_panic_scope(path: &str) -> bool {
    flat_buffer_scope(path)
        || path == "crates/core/src/solver.rs"
        || path == "crates/net/src/routing.rs"
        || path.starts_with("crates/trace/src/")
}

/// The allocation-free invariant scope for `alloc-in-hot-loop`: the
/// PR 2/3 steady-state modules. Reachability alone is too broad here —
/// construction and setup code reachable from the roots may allocate
/// freely; the invariant is specifically about the solver/simulator
/// inner loops.
pub fn alloc_free_scope(path: &str) -> bool {
    flat_buffer_scope(path)
}
