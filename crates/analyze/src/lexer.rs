//! A total, span-preserving Rust lexer.
//!
//! This is the foundation every pass (and the re-hosted `cargo xtask
//! lint` rules) shares. It is *total*: any input string produces a
//! token stream, never a panic, and the spans of the produced tokens
//! are non-overlapping, strictly increasing, char-boundary aligned,
//! and together cover every non-whitespace byte of the input. Those
//! four properties are what `tests/lexer_props.rs` pins.
//!
//! The lexer understands the constructs that made the old line-oriented
//! comment stripper lie:
//!
//! - string literals with escapes (`"a \" b"`), raw strings with any
//!   hash depth (`r#"..."#`), byte/C-string prefixes (`b"", br#""#,
//!   c"", cr#""#`),
//! - char and byte-char literals (`'a'`, `'\n'`, `b'x'`) vs lifetimes
//!   (`'a`, `'static`),
//! - nested block comments (`/* outer /* inner */ still comment */`),
//! - line comments, including doc comments.
//!
//! Malformed input (unterminated strings/comments, stray quotes) is
//! lexed leniently: the unterminated token runs to end of input. For a
//! static analyzer that must never take the build down, graceful
//! over-approximation beats precision.

/// What a [`Token`] is. Keywords are `Ident`s (the parser layer
/// distinguishes them by text); all string-like literals collapse into
/// `Str` because every pass treats their contents as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#match`, ...).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// String-like literal: `"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    Str,
    /// Char-like literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// `// ...` (incl. `///` and `//!`), newline excluded.
    LineComment,
    /// `/* ... */`, nesting-aware, terminator included when present.
    BlockComment,
    /// Any other single non-whitespace character.
    Punct,
}

/// One token: a kind plus a byte span into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Comments are trivia: skipped by the item parser, kept by the
    /// views so `lint:allow` annotations stay findable.
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !f(c) {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into a complete token stream (whitespace omitted).
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor { src, pos: 0 };
    let mut out = Vec::new();
    while let Some(ch) = c.peek() {
        if ch.is_whitespace() {
            c.bump();
            continue;
        }
        let start = c.pos;
        let kind = if ch == '/' && c.peek2() == Some('/') {
            c.eat_while(|x| x != '\n');
            TokenKind::LineComment
        } else if ch == '/' && c.peek2() == Some('*') {
            eat_block_comment(&mut c);
            TokenKind::BlockComment
        } else if is_ident_start(ch) {
            lex_ident_or_prefixed(&mut c)
        } else if ch.is_ascii_digit() {
            eat_number(&mut c);
            TokenKind::Number
        } else if ch == '"' {
            eat_string(&mut c);
            TokenKind::Str
        } else if ch == '\'' {
            c.bump();
            lex_char_or_lifetime(&mut c)
        } else {
            c.bump();
            TokenKind::Punct
        };
        // Totality guard: every branch above must consume at least one
        // char; if one ever fails to, skip a char rather than loop.
        if c.pos == start {
            c.bump();
        }
        out.push(Token {
            kind,
            start,
            end: c.pos,
        });
    }
    out
}

/// An identifier, or a string/char literal introduced by a prefix
/// (`r`, `b`, `br`, `c`, `cr`, or raw identifiers `r#ident`).
fn lex_ident_or_prefixed(c: &mut Cursor<'_>) -> TokenKind {
    let start = c.pos;
    c.eat_while(is_ident_continue);
    let text = &c.src[start..c.pos];
    match (text, c.peek()) {
        ("r" | "b" | "br" | "c" | "cr", Some('"')) => {
            if text.contains('r') && text != "b" {
                eat_raw_string(c, 0)
            } else {
                eat_string(c);
            }
            TokenKind::Str
        }
        ("r" | "br" | "cr", Some('#')) => {
            // Raw string with hashes — or a raw identifier (`r#match`).
            let mut hashes = 0usize;
            let mut it = c.src[c.pos..].chars();
            loop {
                match it.next() {
                    Some('#') => hashes += 1,
                    Some('"') => {
                        eat_raw_string(c, hashes);
                        return TokenKind::Str;
                    }
                    Some(x) if text == "r" && hashes == 1 && is_ident_start(x) => {
                        // Raw identifier: consume `#` + ident.
                        c.bump();
                        c.eat_while(is_ident_continue);
                        return TokenKind::Ident;
                    }
                    _ => return TokenKind::Ident,
                }
            }
        }
        ("b", Some('\'')) => {
            c.bump();
            lex_char_or_lifetime(c);
            // A byte "lifetime" (`b'x` with no close) is not valid
            // Rust; classify the whole prefixed token as Char either
            // way — passes only care that the contents are opaque.
            TokenKind::Char
        }
        _ => TokenKind::Ident,
    }
}

/// Consume a `"..."` string body starting at the opening quote.
fn eat_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(x) = c.bump() {
        match x {
            '\\' => {
                c.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Consume `#*hashes "..." "#*hashes` starting at the first `#` (or at
/// the quote when `hashes == 0`).
fn eat_raw_string(c: &mut Cursor<'_>, hashes: usize) {
    for _ in 0..hashes {
        c.bump(); // '#'
    }
    c.bump(); // opening quote
    let closer: String = std::iter::once('"')
        .chain("#".repeat(hashes).chars())
        .collect();
    while c.pos < c.src.len() {
        if c.starts_with(&closer) {
            for _ in 0..=hashes {
                c.bump();
            }
            return;
        }
        c.bump();
    }
}

/// Consume a nested `/* ... */` comment starting at the `/`.
fn eat_block_comment(c: &mut Cursor<'_>) {
    c.bump(); // '/'
    c.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        if c.starts_with("/*") {
            depth += 1;
            c.bump();
            c.bump();
        } else if c.starts_with("*/") {
            depth -= 1;
            c.bump();
            c.bump();
        } else if c.bump().is_none() {
            return;
        }
    }
}

/// Consume a numeric literal starting at its first digit.
fn eat_number(c: &mut Cursor<'_>) {
    c.eat_while(is_ident_continue);
    // Fractional part: only when followed by a digit (`1.5`, not `1..4`
    // and not `1.max(2)`).
    if c.peek() == Some('.') && c.peek2().is_some_and(|x| x.is_ascii_digit()) {
        c.bump();
        c.eat_while(is_ident_continue);
    }
    // Signed exponent: `1e-5`, `2.5E+10` (the unsigned form was already
    // swallowed by the ident-continue runs above).
    let prev_is_exp = c.src[..c.pos].ends_with(['e', 'E']);
    if prev_is_exp
        && matches!(c.peek(), Some('+' | '-'))
        && c.peek2().is_some_and(|x| x.is_ascii_digit())
    {
        c.bump();
        c.eat_while(is_ident_continue);
    }
}

/// After an opening `'` has been consumed: decide between a char
/// literal, a lifetime/label, or a stray quote.
fn lex_char_or_lifetime(c: &mut Cursor<'_>) -> TokenKind {
    match c.peek() {
        // Escape sequence: consume through the closing quote (or give
        // up at end of line / input for malformed literals).
        Some('\\') => {
            c.bump();
            c.bump(); // the escaped char
            while let Some(x) = c.peek() {
                if x == '\'' {
                    c.bump();
                    break;
                }
                if x == '\n' {
                    break;
                }
                c.bump();
            }
            TokenKind::Char
        }
        // `''` — empty char literal (invalid Rust, lexed leniently).
        Some('\'') => {
            c.bump();
            TokenKind::Char
        }
        Some(x) if is_ident_continue(x) => {
            if c.peek2() == Some('\'') && c.peek3() != Some('\'') {
                // 'a' — but not 'a'' (label followed by char? lex the
                // simple thing: 'a' as the char).
                c.bump();
                c.bump();
                TokenKind::Char
            } else if c.peek2() == Some('\'') {
                c.bump();
                c.bump();
                TokenKind::Char
            } else {
                // Lifetime or loop label.
                c.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        // '(' + ')' + quote etc: a one-char literal like '(' if the
        // closing quote is right there, else a stray quote.
        Some(_) if c.peek2() == Some('\'') => {
            c.bump();
            c.bump();
            TokenKind::Char
        }
        _ => TokenKind::Punct,
    }
}

/// The **code view**: same length and same newline positions as `src`,
/// but every byte inside comments and string/char literals replaced by
/// a space. Line-oriented pattern rules run on this — a `panic!(...)`
/// spelled inside a doc comment or a string literal simply is not
/// there anymore, while every real code byte keeps its exact column.
pub fn code_view(src: &str, tokens: &[Token]) -> String {
    let mut bytes = src.as_bytes().to_vec();
    for t in tokens {
        if matches!(
            t.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Str | TokenKind::Char
        ) {
            for b in bytes.get_mut(t.start..t.end).unwrap_or(&mut []).iter_mut() {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    }
    // The masked buffer is valid UTF-8 by construction (token spans lie
    // on char boundaries), so the lossy conversion is a plain copy.
    String::from_utf8_lossy(&bytes).into_owned()
}

/// The **comment view**: the complement of [`code_view`] — only
/// comment bytes survive (newlines are kept everywhere so line numbers
/// align). `lint:allow(...)` annotations are parsed from this view, so
/// an "annotation" inside a string literal is inert.
pub fn comment_view(src: &str, tokens: &[Token]) -> String {
    let mut bytes: Vec<u8> = src
        .as_bytes()
        .iter()
        .map(|&b| if b == b'\n' { b'\n' } else { b' ' })
        .collect();
    for t in tokens {
        if t.is_trivia() {
            let span = &src.as_bytes()[t.start..t.end];
            for (dst, &s) in bytes
                .get_mut(t.start..t.end)
                .unwrap_or(&mut [])
                .iter_mut()
                .zip(span)
            {
                *dst = s;
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Byte offsets of line starts; `line_of` maps a span offset to a
/// 1-based line number with a binary search.
#[derive(Debug, Clone)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        Self { starts }
    }

    pub fn line_of(&self, offset: usize) -> usize {
        self.starts.partition_point(|&s| s <= offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn lexes_plain_code() {
        let got = kinds("fn f(x: u32) -> u32 { x + 1 }");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "f", "(", "x", ":", "u32", ")", "-", ">", "u32", "{", "x", "+", "1", "}"]
        );
        assert_eq!(got[0].0, TokenKind::Ident);
        assert_eq!(got[13].0, TokenKind::Number);
    }

    #[test]
    fn strings_are_single_tokens() {
        let got = kinds(r#"let s = "Instant::now() \" quoted";"#);
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        let s = got
            .iter()
            .find(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.clone());
        assert_eq!(s.as_deref(), Some(r#""Instant::now() \" quoted""#));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "quotes" and HashMap"#;"###;
        let got = kinds(src);
        let s: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(s, [r###"r#"contains "quotes" and HashMap"#"###]);
    }

    #[test]
    fn byte_and_c_strings() {
        for src in [
            "b\"bytes\"",
            "br#\"raw bytes\"#",
            "c\"cstr\"",
            "cr#\"raw c\"#",
        ] {
            let got = kinds(src);
            assert_eq!(got.len(), 1, "{src}");
            assert_eq!(got[0].0, TokenKind::Str, "{src}");
            assert_eq!(got[0].1, src, "{src}");
        }
    }

    #[test]
    fn raw_identifiers() {
        let got = kinds("let r#match = 1;");
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let got = kinds(r"let c = 'a'; let e = '\n'; fn f<'a>(x: &'a str) {} 'outer: loop {}");
        let chars: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["'a'", r"'\n'"]);
        let lifetimes: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'outer"]);
    }

    #[test]
    fn byte_char_literal() {
        let got = kinds("self.expect(b'[')?;");
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "b'['"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let got = kinds(src);
        assert_eq!(got[0].0, TokenKind::BlockComment);
        assert_eq!(got[0].1, "/* outer /* inner */ still comment */");
        assert_eq!(got[1].1, "fn");
    }

    #[test]
    fn unterminated_constructs_run_to_eof() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed"] {
            let got = lex(src);
            assert_eq!(got.len(), 1, "{src}");
            assert_eq!(got[0].end, src.len(), "{src}");
        }
    }

    #[test]
    fn numbers_with_exponents_and_suffixes() {
        let got = kinds("1.5e-3 + 0xFF_u32 + 2.5E+10 + 1_000usize");
        let nums: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["1.5e-3", "0xFF_u32", "2.5E+10", "1_000usize"]);
    }

    #[test]
    fn range_dots_are_not_swallowed() {
        let got = kinds("for i in 0..10 {}");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["for", "i", "in", "0", ".", ".", "10", "{", "}"]);
    }

    #[test]
    fn code_view_masks_comments_and_strings() {
        let src = "let s = \"Instant::now()\"; // SystemTime\nlet t = 1; /* HashMap */ f();\n";
        let toks = lex(src);
        let view = code_view(src, &toks);
        assert_eq!(view.len(), src.len());
        assert!(!view.contains("Instant"));
        assert!(!view.contains("SystemTime"));
        assert!(!view.contains("HashMap"));
        assert!(view.contains("let s ="));
        assert!(view.contains("f();"));
        assert_eq!(view.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn comment_view_keeps_only_comments() {
        let src =
            "let x = 1; // lint:allow(wall-clock): reporting only\n\"lint:allow(raw-index)\";\n";
        let toks = lex(src);
        let view = comment_view(src, &toks);
        assert!(view.contains("lint:allow(wall-clock): reporting only"));
        assert!(!view.contains("lint:allow(raw-index)"));
        assert!(!view.contains("let x"));
    }

    #[test]
    fn line_index_maps_offsets() {
        let src = "a\nbb\nccc\n";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_of(0), 1);
        assert_eq!(idx.line_of(2), 2);
        assert_eq!(idx.line_of(5), 3);
    }
}
