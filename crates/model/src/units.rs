//! Physical units used throughout the model.
//!
//! The paper expresses disk capacities and video sizes in gigabytes and
//! link capacities and stream bitrates in megabits per second (Table I).
//! We keep both as `f64` newtype wrappers with explicit conversions so
//! that the solver and the simulator can never silently mix them up.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            pub const ZERO: Self = Self(0.0);

            #[inline]
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.3} ", $suffix), self.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio of two quantities of the same unit (dimensionless).
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// An amount of storage, in gigabytes (`D_i`, `s^m` in Table I).
    Gigabytes,
    "GB"
);

unit_newtype!(
    /// A data rate, in megabits per second (`B_l`, `r^m` in Table I).
    Mbps,
    "Mb/s"
);

impl Gigabytes {
    /// Construct from megabytes (video sizes in Section VII-A are given
    /// as 100 MB / 500 MB / 1 GB / 2 GB).
    #[inline]
    pub fn from_mb(mb: f64) -> Self {
        Self(mb / 1000.0)
    }

    /// Gigabits contained in this many gigabytes (1 byte = 8 bits).
    #[inline]
    pub fn gigabits(self) -> f64 {
        self.0 * 8.0
    }
}

impl Mbps {
    /// Construct from gigabits per second (link capacities in Section
    /// VII are quoted in Gb/s).
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        Self(gbps * 1000.0)
    }

    /// This rate expressed in Gb/s.
    #[inline]
    pub fn gbps(self) -> f64 {
        self.0 / 1000.0
    }

    /// Data volume transferred at this rate over `seconds`, in gigabytes.
    #[inline]
    pub fn volume_over(self, seconds: f64) -> Gigabytes {
        // Mb/s * s = Mb; /8 = MB; /1000 = GB.
        Gigabytes(self.0 * seconds / 8.0 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let a = Gigabytes::new(1.5);
        let b = Gigabytes::new(0.5);
        assert_eq!((a + b).value(), 2.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        assert_eq!(a / b, 3.0);
        assert_eq!((-b).value(), -0.5);
    }

    #[test]
    fn conversions() {
        assert_eq!(Gigabytes::from_mb(500.0).value(), 0.5);
        assert_eq!(Mbps::from_gbps(1.0).value(), 1000.0);
        assert_eq!(Mbps::new(2500.0).gbps(), 2.5);
    }

    #[test]
    fn stream_volume() {
        // A 2 Mb/s stream for one hour moves 0.9 GB.
        let v = Mbps::new(2.0).volume_over(3600.0);
        assert!((v.value() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn sum_and_compare() {
        let total: Mbps = vec![Mbps::new(1.0), Mbps::new(2.0), Mbps::new(3.0)]
            .into_iter()
            .sum();
        assert_eq!(total.value(), 6.0);
        assert_eq!(Mbps::new(1.0).max(Mbps::new(2.0)), Mbps::new(2.0));
        assert_eq!(Mbps::new(1.0).min(Mbps::new(2.0)), Mbps::new(1.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Gigabytes::new(1.0).to_string(), "1.000 GB");
        assert_eq!(Mbps::new(2.0).to_string(), "2.000 Mb/s");
    }
}
