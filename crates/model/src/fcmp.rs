//! Total-order float comparison helpers.
//!
//! Every sort and extremum over `f64` in this workspace must be
//! deterministic and panic-free. `partial_cmp(...).unwrap()` is neither
//! guaranteed: a single NaN — one bad divide in a cost model — turns a
//! reproducible run into a panic (or, with `sort_by` variants that
//! swallow `None`, into a silently corrupted order). These helpers wrap
//! [`f64::total_cmp`], which implements the IEEE 754 `totalOrder`
//! predicate: every value, NaN included, has a fixed position
//! (`-NaN < -inf < ... < -0.0 < +0.0 < ... < +inf < +NaN`).
//!
//! The custom lint pass (`cargo xtask lint`, rule `nan-unwrap-cmp`)
//! rejects `partial_cmp().unwrap()` comparators and points here.

use std::cmp::Ordering;

/// Ascending total-order comparator: `xs.sort_by(fcmp)`.
#[inline]
pub fn fcmp(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

/// Descending total-order comparator: `xs.sort_by(fcmp_desc)`.
#[inline]
pub fn fcmp_desc(a: &f64, b: &f64) -> Ordering {
    b.total_cmp(a)
}

/// Total-order comparison of two key values, for use inside custom
/// comparators: `xs.sort_by(|a, b| fcmp_by(score(a), score(b)).then(...))`.
#[inline]
pub fn fcmp_by(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_ascending_and_descending() {
        let mut xs = vec![3.0, -1.0, 2.5, 0.0];
        xs.sort_by(fcmp);
        assert_eq!(xs, vec![-1.0, 0.0, 2.5, 3.0]);
        xs.sort_by(fcmp_desc);
        assert_eq!(xs, vec![3.0, 2.5, 0.0, -1.0]);
    }

    #[test]
    fn nan_has_a_fixed_position_instead_of_panicking() {
        let mut xs = [1.0, f64::NAN, -2.0, f64::NEG_INFINITY, -f64::NAN];
        xs.sort_by(fcmp);
        // -NaN first, +NaN last; finite values ordered in between.
        assert!(xs[0].is_nan());
        assert_eq!(xs[1], f64::NEG_INFINITY);
        assert_eq!(xs[2], -2.0);
        assert_eq!(xs[3], 1.0);
        assert!(xs[4].is_nan());
    }

    #[test]
    fn fcmp_by_composes_with_tie_breaks() {
        let mut pairs = vec![(2.0, 1u32), (1.0, 9), (2.0, 0)];
        pairs.sort_by(|a, b| fcmp_by(a.0, b.0).then(a.1.cmp(&b.1)));
        assert_eq!(pairs, vec![(1.0, 9), (2.0, 0), (2.0, 1)]);
    }

    #[test]
    fn zero_signs_are_ordered_not_equal() {
        assert_eq!(fcmp(&-0.0, &0.0), Ordering::Less);
        assert_eq!(fcmp_by(0.0, -0.0), Ordering::Greater);
    }
}
