//! The video catalog: the set `M` of Table I.
//!
//! Section VII-A maps the operational trace's videos onto four length
//! classes (5 min, 30 min, 1 h, 2 h) with sizes 100 MB, 500 MB, 1 GB
//! and 2 GB, all streaming at 2 Mb/s standard definition. Videos may
//! additionally carry release metadata (release day, TV-series
//! membership, blockbuster flag) that drives the demand-estimation
//! experiments of Sections VI-A and VII-H.

use crate::ids::VideoId;
use crate::time::DAY;
use crate::units::{Gigabytes, Mbps};

/// The four video length classes of Section VII-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VideoClass {
    /// 5 minutes, 100 MB — music videos and trailers.
    Clip,
    /// 30 minutes, 500 MB — short TV shows.
    ShortShow,
    /// 1 hour, 1 GB — full TV episodes.
    Show,
    /// 2 hours, 2 GB — full-length movies.
    Movie,
}

impl VideoClass {
    pub const ALL: [VideoClass; 4] = [
        VideoClass::Clip,
        VideoClass::ShortShow,
        VideoClass::Show,
        VideoClass::Movie,
    ];

    /// Stream duration in seconds.
    pub const fn duration_secs(self) -> u64 {
        match self {
            VideoClass::Clip => 5 * 60,
            VideoClass::ShortShow => 30 * 60,
            VideoClass::Show => 60 * 60,
            VideoClass::Movie => 120 * 60,
        }
    }

    /// On-disk size.
    pub fn size(self) -> Gigabytes {
        match self {
            VideoClass::Clip => Gigabytes::from_mb(100.0),
            VideoClass::ShortShow => Gigabytes::from_mb(500.0),
            VideoClass::Show => Gigabytes::new(1.0),
            VideoClass::Movie => Gigabytes::new(2.0),
        }
    }
}

/// Release/content metadata used by the demand estimators (Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VideoKind {
    /// Back-catalog content present since the start of the trace.
    #[default]
    Catalog,
    /// Episode `episode` (1-based) of TV series `series`; consecutive
    /// episodes are released a week apart and show similar demand
    /// (Fig. 4), which the series estimator exploits.
    SeriesEpisode { series: u32, episode: u32 },
    /// A heavily promoted new movie; the blockbuster estimator predicts
    /// its demand from last week's most popular movie.
    Blockbuster,
    /// A new release with no usable history (music videos, unpopular
    /// movies) — only the complementary LRU cache absorbs these.
    OtherNew,
}

/// One video in the catalog: an element of `M` with its MIP parameters
/// `s^m` (size) and `r^m` (bitrate), plus workload metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    pub id: VideoId,
    pub class: VideoClass,
    pub kind: VideoKind,
    /// Day (0-based, relative to trace start) the video becomes
    /// requestable. Catalog videos have `release_day == 0`.
    pub release_day: u64,
    /// Base popularity weight (relative request intensity once
    /// released); the trace generator assigns these from the
    /// popularity distribution.
    pub weight: f64,
}

impl Video {
    /// On-disk size `s^m` in GB.
    #[inline]
    pub fn size(&self) -> Gigabytes {
        self.class.size()
    }

    /// Stream bitrate `r^m`; all videos are 2 Mb/s SD (Section VII-A).
    #[inline]
    pub fn bitrate(&self) -> Mbps {
        Mbps::new(2.0)
    }

    /// Stream duration in seconds.
    #[inline]
    pub fn duration_secs(&self) -> u64 {
        self.class.duration_secs()
    }

    /// First instant the video can be requested.
    #[inline]
    pub fn release_time_secs(&self) -> u64 {
        self.release_day * DAY
    }

    /// Whether this video is a new release (not back catalog).
    #[inline]
    pub fn is_new_release(&self) -> bool {
        !matches!(self.kind, VideoKind::Catalog)
    }
}

/// The full video library.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    videos: Vec<Video>,
}

impl Catalog {
    pub fn new(videos: Vec<Video>) -> Self {
        for (idx, v) in videos.iter().enumerate() {
            assert_eq!(
                v.id.index(),
                idx,
                "catalog videos must be stored in id order"
            );
        }
        Self { videos }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    #[inline]
    pub fn video(&self, id: VideoId) -> &Video {
        &self.videos[id.index()]
    }

    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &Video> {
        self.videos.iter()
    }

    pub fn ids(&self) -> impl Iterator<Item = VideoId> + '_ {
        (0..self.videos.len()).map(VideoId::from_index)
    }

    /// Total size of one copy of every video — the lower bound on
    /// aggregate disk in the feasibility region of Fig. 11.
    pub fn total_size(&self) -> Gigabytes {
        self.videos.iter().map(|v| v.size()).sum()
    }

    /// Videos released on `day` (used by weekly placement updates to
    /// discover new content).
    pub fn released_on(&self, day: u64) -> impl Iterator<Item = &Video> {
        self.videos.iter().filter(move |v| v.release_day == day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u32, class: VideoClass) -> Video {
        Video {
            id: VideoId::new(id),
            class,
            kind: VideoKind::Catalog,
            release_day: 0,
            weight: 1.0,
        }
    }

    #[test]
    fn class_parameters_match_paper() {
        assert_eq!(VideoClass::Clip.size().value(), 0.1);
        assert_eq!(VideoClass::ShortShow.size().value(), 0.5);
        assert_eq!(VideoClass::Show.size().value(), 1.0);
        assert_eq!(VideoClass::Movie.size().value(), 2.0);
        assert_eq!(VideoClass::Movie.duration_secs(), 7200);
        assert_eq!(mk(0, VideoClass::Clip).bitrate(), Mbps::new(2.0));
    }

    #[test]
    fn catalog_total_size() {
        let c = Catalog::new(vec![mk(0, VideoClass::Movie), mk(1, VideoClass::Show)]);
        assert_eq!(c.total_size().value(), 3.0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "id order")]
    fn catalog_rejects_misordered_ids() {
        let _ = Catalog::new(vec![mk(1, VideoClass::Clip)]);
    }

    #[test]
    fn release_metadata() {
        let mut v = mk(0, VideoClass::Show);
        v.kind = VideoKind::SeriesEpisode {
            series: 3,
            episode: 2,
        };
        v.release_day = 14;
        assert!(v.is_new_release());
        assert_eq!(v.release_time_secs(), 14 * 86_400);
        assert!(!mk(1, VideoClass::Clip).is_new_release());
    }

    #[test]
    fn released_on_filters() {
        let mut a = mk(0, VideoClass::Show);
        a.release_day = 7;
        let b = mk(1, VideoClass::Clip);
        let c = Catalog::new(vec![a, b]);
        assert_eq!(c.released_on(7).count(), 1);
        assert_eq!(c.released_on(0).count(), 1);
        assert_eq!(c.released_on(3).count(), 0);
    }
}

/// Chunked-library transform (Section V-B): "If we wanted to break up
/// videos into chunks and store their pieces in separate locations, we
/// could accomplish that by treating each chunk as a distinct element
/// of M." This helper materializes that: every video is split into
/// `ceil(size / chunk_gb)` chunks, each a catalog entry of its own with
/// the parent's popularity weight and release day; the mapping back to
/// parents is returned alongside.
pub fn chunked_catalog(catalog: &Catalog, chunk_gb: f64) -> (Catalog, Vec<VideoId>) {
    assert!(chunk_gb > 0.0, "chunk size must be positive");
    let mut videos = Vec::new();
    let mut parents = Vec::new();
    for v in catalog.iter() {
        // Chunk counts are tiny (a video is a handful of GB); clamp
        // explicitly rather than rely on the cast's saturating behavior.
        #[allow(clippy::cast_possible_truncation)]
        let n_chunks = (v.size().value() / chunk_gb)
            .ceil()
            .max(1.0)
            .min(u32::MAX as f64) as u32;
        // Preserve total duration and size across the chunks by
        // assigning each chunk the smallest class at least as large as
        // the chunk size (exact sizes are class-quantized in this
        // model, matching how the paper quantizes video lengths).
        let per_chunk_gb = v.size().value() / n_chunks as f64;
        let class = VideoClass::ALL
            .iter()
            .copied()
            .find(|c| c.size().value() >= per_chunk_gb - 1e-9)
            .unwrap_or(VideoClass::Movie);
        for _ in 0..n_chunks {
            videos.push(Video {
                id: VideoId::from_index(videos.len()),
                class,
                kind: v.kind,
                release_day: v.release_day,
                weight: v.weight / n_chunks as f64,
            });
            parents.push(v.id);
        }
    }
    (Catalog::new(videos), parents)
}

#[cfg(test)]
mod chunk_tests {
    use super::*;

    #[test]
    fn movies_split_clips_do_not() {
        let catalog = Catalog::new(vec![
            Video {
                id: VideoId::new(0),
                class: VideoClass::Movie, // 2 GB
                kind: VideoKind::Catalog,
                release_day: 3,
                weight: 1.0,
            },
            Video {
                id: VideoId::new(1),
                class: VideoClass::Clip, // 0.1 GB
                kind: VideoKind::Catalog,
                release_day: 0,
                weight: 0.5,
            },
        ]);
        let (chunked, parents) = chunked_catalog(&catalog, 0.5);
        // Movie → 4 chunks of 0.5 GB; clip → 1 chunk.
        assert_eq!(chunked.len(), 5);
        assert_eq!(parents[..4], [VideoId::new(0); 4]);
        assert_eq!(parents[4], VideoId::new(1));
        // Weight conserved per parent.
        let w0: f64 = chunked.iter().take(4).map(|v| v.weight).sum();
        assert!((w0 - 1.0).abs() < 1e-12);
        // Release metadata inherited.
        assert_eq!(chunked.video(VideoId::new(0)).release_day, 3);
    }

    #[test]
    fn chunking_at_video_size_is_identity_shaped() {
        let catalog = Catalog::new(vec![Video {
            id: VideoId::new(0),
            class: VideoClass::Show,
            kind: VideoKind::Catalog,
            release_day: 0,
            weight: 2.0,
        }]);
        let (chunked, parents) = chunked_catalog(&catalog, 10.0);
        assert_eq!(chunked.len(), 1);
        assert_eq!(parents, vec![VideoId::new(0)]);
        assert_eq!(chunked.video(VideoId::new(0)).weight, 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_rejected() {
        let catalog = Catalog::new(vec![]);
        let _ = chunked_catalog(&catalog, 0.0);
    }
}
