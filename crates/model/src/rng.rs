//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (topology generation,
//! trace synthesis, the solver's shuffled passes, the simulator's
//! weighted server selection) takes an explicit `u64` seed so that
//! experiments are exactly reproducible. This module centralizes seed
//! derivation so that independent components fed from one master seed
//! do not accidentally share streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Create a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a sub-seed for a named component from a master seed.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix —
/// distinct `(seed, stream)` pairs map to well-separated sub-seeds.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a per-(component, index) RNG from a master seed.
pub fn derive_rng(master: u64, stream: u64) -> StdRng {
    rng_from_seed(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = derive_rng(42, 1)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = derive_rng(42, 1)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn derive_is_not_identity() {
        assert_ne!(derive_seed(0, 0), 0);
    }
}
