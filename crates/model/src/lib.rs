//! Core domain types shared by every crate in the `vodplace` workspace.
//!
//! This crate defines the vocabulary of the paper's system model
//! (Section III and Table I): videos (the set `M`), video hub offices
//! (VHOs, the set `V`), directed backbone links (the set `L`), time
//! slices (the set `T`), and the physical units the model is expressed
//! in (gigabytes of disk, megabits per second of link capacity and
//! stream bitrate, seconds of simulated time).
//!
//! Everything downstream — the network model, trace generation, the MIP
//! formulation, the EPF solver and the streaming simulator — speaks in
//! these types, so they are deliberately small, `Copy` where possible,
//! and serializable.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod fcmp;
pub mod ids;
pub mod narrow;
pub mod rng;
pub mod slab;
pub mod time;
pub mod units;
pub mod video;

pub use fcmp::{fcmp, fcmp_by, fcmp_desc};
pub use ids::{LinkId, VhoId, VideoId};
pub use time::{SimTime, TimeWindow};
pub use units::{Gigabytes, Mbps};
pub use video::{chunked_catalog, Catalog, Video, VideoClass, VideoKind};
