//! Dense-slab helpers: an intrusive, index-linked doubly-linked list.
//!
//! [`IndexList`] stores `prev`/`next` cursors in two flat `Vec<u32>`s
//! indexed by the same dense id space as the caller's entry slab (for
//! the simulator's caches: `VideoId::index()`). Linking, unlinking and
//! positional insertion are O(1) and allocation-free once the backing
//! vectors have grown to the id range — exactly what a cache touch on
//! the simulator hot path needs, where a `BTreeSet` re-key used to pay
//! a log-time node rebalance and allocator traffic per request.
//!
//! The list does not own element *presence*: callers must only link an
//! index that is currently unlinked and unlink one that is linked
//! (both are `debug_assert`ed via the `NIL` sentinel convention).

use std::fmt;

/// Sentinel for "no element" in [`IndexList`] cursors.
pub const NIL: u32 = u32::MAX;

/// An intrusive doubly-linked list over a dense `u32` index space.
#[derive(Clone, Default)]
pub struct IndexList {
    head: u32,
    tail: u32,
    prev: Vec<u32>,
    next: Vec<u32>,
}

impl IndexList {
    pub fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            prev: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Pre-size the cursor arrays for indices `0..n` (amortized; safe
    /// to call repeatedly with growing `n`).
    pub fn ensure(&mut self, n: usize) {
        if self.prev.len() < n {
            self.prev.resize(n, NIL);
            self.next.resize(n, NIL);
        }
    }

    /// First (eviction-side) element, or `NIL` when empty.
    #[inline]
    pub fn head(&self) -> u32 {
        self.head
    }

    /// Last (most-recently-filed) element, or `NIL` when empty.
    #[inline]
    pub fn tail(&self) -> u32 {
        self.tail
    }

    /// Successor of `i`, or `NIL` at the tail.
    #[inline]
    pub fn next(&self, i: u32) -> u32 {
        self.next[i as usize]
    }

    /// Predecessor of `i`, or `NIL` at the head.
    #[inline]
    pub fn prev(&self, i: u32) -> u32 {
        self.prev[i as usize]
    }

    /// Append `i` at the tail. `i` must be unlinked and within the
    /// `ensure`d range.
    pub fn push_back(&mut self, i: u32) {
        debug_assert!(self.unlinked(i), "push_back of a linked index {i}");
        let t = self.tail;
        self.prev[i as usize] = t;
        self.next[i as usize] = NIL;
        if t == NIL {
            self.head = i;
        } else {
            self.next[t as usize] = i;
        }
        self.tail = i;
    }

    /// Insert `i` at the head. `i` must be unlinked.
    pub fn push_front(&mut self, i: u32) {
        debug_assert!(self.unlinked(i), "push_front of a linked index {i}");
        let h = self.head;
        self.next[i as usize] = h;
        self.prev[i as usize] = NIL;
        if h == NIL {
            self.tail = i;
        } else {
            self.prev[h as usize] = i;
        }
        self.head = i;
    }

    /// Insert `i` immediately after the linked element `at`.
    pub fn insert_after(&mut self, at: u32, i: u32) {
        debug_assert!(self.unlinked(i), "insert_after of a linked index {i}");
        let n = self.next[at as usize];
        self.prev[i as usize] = at;
        self.next[i as usize] = n;
        self.next[at as usize] = i;
        if n == NIL {
            self.tail = i;
        } else {
            self.prev[n as usize] = i;
        }
    }

    /// Remove `i` from the list (it must currently be linked).
    pub fn unlink(&mut self, i: u32) {
        let p = self.prev[i as usize];
        let n = self.next[i as usize];
        if p == NIL {
            debug_assert_eq!(self.head, i, "unlink of an unlinked index {i}");
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[i as usize] = NIL;
        self.next[i as usize] = NIL;
    }

    /// Whether `i` carries no links (head-of-a-single-element lists are
    /// linked yet have NIL cursors, hence the head check).
    fn unlinked(&self, i: u32) -> bool {
        self.prev[i as usize] == NIL && self.next[i as usize] == NIL && self.head != i
    }

    /// Iterate front-to-back (eviction order).
    pub fn iter(&self) -> IndexListIter<'_> {
        IndexListIter {
            list: self,
            at: self.head,
        }
    }
}

impl fmt::Debug for IndexList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Front-to-back iterator over an [`IndexList`].
#[derive(Debug)]
pub struct IndexListIter<'a> {
    list: &'a IndexList,
    at: u32,
}

impl Iterator for IndexListIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.at == NIL {
            return None;
        }
        let i = self.at;
        self.at = self.list.next(i);
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(l: &IndexList) -> Vec<u32> {
        l.iter().collect()
    }

    #[test]
    fn push_and_iterate() {
        let mut l = IndexList::new();
        l.ensure(5);
        l.push_back(1);
        l.push_back(3);
        l.push_front(0);
        assert_eq!(collect(&l), vec![0, 1, 3]);
        assert_eq!(l.head(), 0);
        assert_eq!(l.tail(), 3);
    }

    #[test]
    fn unlink_middle_head_tail() {
        let mut l = IndexList::new();
        l.ensure(4);
        for i in 0..4 {
            l.push_back(i);
        }
        l.unlink(2);
        assert_eq!(collect(&l), vec![0, 1, 3]);
        l.unlink(0);
        assert_eq!(collect(&l), vec![1, 3]);
        l.unlink(3);
        assert_eq!(collect(&l), vec![1]);
        l.unlink(1);
        assert_eq!(collect(&l), Vec::<u32>::new());
        assert_eq!(l.head(), NIL);
        assert_eq!(l.tail(), NIL);
    }

    #[test]
    fn insert_after_updates_tail() {
        let mut l = IndexList::new();
        l.ensure(4);
        l.push_back(0);
        l.push_back(2);
        l.insert_after(0, 1);
        assert_eq!(collect(&l), vec![0, 1, 2]);
        l.insert_after(2, 3);
        assert_eq!(collect(&l), vec![0, 1, 2, 3]);
        assert_eq!(l.tail(), 3);
    }

    #[test]
    fn relink_after_unlink() {
        let mut l = IndexList::new();
        l.ensure(3);
        l.push_back(0);
        l.push_back(1);
        l.unlink(0);
        l.push_back(0); // move-to-back idiom
        assert_eq!(collect(&l), vec![1, 0]);
    }

    #[test]
    fn ensure_grows_without_relinking() {
        let mut l = IndexList::new();
        l.ensure(1);
        l.push_back(0);
        l.ensure(10);
        l.push_back(9);
        assert_eq!(collect(&l), vec![0, 9]);
    }
}
