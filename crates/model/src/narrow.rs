//! Checked and clamped narrowing conversions.
//!
//! The workspace lint wall denies `clippy::cast_possible_truncation`,
//! so narrowing conversions go through these helpers instead of bare
//! `as` casts. The `*_from` functions panic loudly when a value
//! genuinely does not fit (instead of wrapping silently); the
//! `count_*` functions turn nonnegative float counts into integers
//! with explicit clamping semantics (NaN maps to zero, the top end
//! saturates).

/// Integer → `usize` index/count. Lossless on 64-bit targets for
/// `u64` inputs; panics if the value does not fit.
#[inline]
pub fn usize_from<T: TryInto<usize>>(x: T) -> usize
where
    T::Error: core::fmt::Debug,
{
    // lint:allow(no-panic-hot-path): loud-failure narrowing is this
    // helper's contract — wrapping silently would corrupt indices.
    x.try_into().expect("value exceeds usize::MAX")
}

/// Integer → `u32` index/count, panicking on overflow.
#[inline]
pub fn u32_from<T: TryInto<u32>>(x: T) -> u32
where
    T::Error: core::fmt::Debug,
{
    // lint:allow(no-panic-hot-path): loud-failure narrowing is this
    // helper's contract — wrapping silently would corrupt indices.
    x.try_into().expect("value exceeds u32::MAX")
}

/// Integer → `u16` index/count, panicking on overflow.
#[inline]
pub fn u16_from<T: TryInto<u16>>(x: T) -> u16
where
    T::Error: core::fmt::Debug,
{
    x.try_into().expect("value exceeds u16::MAX")
}

/// Nonnegative float → `u64` count. NaN maps to 0; the cast saturates
/// at `u64::MAX` (Rust float-to-int casts have been saturating since
/// 1.45 — this helper just spells that contract out once).
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn count_u64(x: f64) -> u64 {
    x.max(0.0) as u64
}

/// Nonnegative float → `usize` count, with the same semantics as
/// [`count_u64`].
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn count_usize(x: f64) -> usize {
    x.max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_conversions_roundtrip() {
        assert_eq!(usize_from(42u64), 42);
        assert_eq!(u32_from(70_000usize), 70_000);
        assert_eq!(u16_from(65_535usize), 65_535);
    }

    #[test]
    #[should_panic(expected = "exceeds u16::MAX")]
    fn overflow_panics_instead_of_wrapping() {
        u16_from(65_536usize);
    }

    #[test]
    fn float_counts_clamp() {
        assert_eq!(count_u64(3.7), 3);
        assert_eq!(count_u64(-1.0), 0);
        assert_eq!(count_u64(f64::NAN), 0);
        assert_eq!(count_usize(1e300), usize::MAX);
    }
}
