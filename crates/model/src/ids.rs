//! Strongly-typed identifiers for the three index sets of the model.
//!
//! The paper's MIP (Table I) is indexed by videos `m ∈ M`, VHOs
//! `i, j ∈ V` and links `l ∈ L`. Using newtypes instead of bare
//! integers prevents an entire class of index-mixup bugs in the solver
//! and simulator, at zero runtime cost.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// The raw index, for use as a `Vec` offset.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index, panicking on overflow.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                // lint:allow(no-panic-hot-path): id spaces are sized at
                // model construction; an overflowing index is a caller
                // bug, not a runtime condition to degrade through.
                Self(<$inner>::try_from(idx).expect(concat!(stringify!($name), " overflow")))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }
    };
}

id_newtype!(
    /// A video in the catalog — an element of the set `M` ("mnemonic: movies").
    VideoId,
    u32,
    "m"
);

id_newtype!(
    /// A video hub office — an element of the set `V` of vertices.
    VhoId,
    u16,
    "v"
);

id_newtype!(
    /// A directed backbone link — an element of the set `L`.
    ///
    /// Links are directed: a bidirectional physical link is modeled as
    /// two `LinkId`s, one per direction, each with its own capacity,
    /// exactly as constraint (6) of the paper requires.
    LinkId,
    u32,
    "l"
);

/// Iterate over all `VhoId`s in `0..n`.
pub fn all_vhos(n: usize) -> impl Iterator<Item = VhoId> + Clone {
    (0..n).map(VhoId::from_index)
}

/// Iterate over all `VideoId`s in `0..n`.
pub fn all_videos(n: usize) -> impl Iterator<Item = VideoId> + Clone {
    (0..n).map(VideoId::from_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let v = VhoId::from_index(54);
        assert_eq!(v.index(), 54);
        assert_eq!(v, VhoId::new(54));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(VideoId::new(7).to_string(), "m7");
        assert_eq!(VhoId::new(3).to_string(), "v3");
        assert_eq!(LinkId::new(12).to_string(), "l12");
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(VideoId::new(1) < VideoId::new(2));
        let mut ids = vec![LinkId::new(5), LinkId::new(1), LinkId::new(3)];
        ids.sort();
        assert_eq!(ids, vec![LinkId::new(1), LinkId::new(3), LinkId::new(5)]);
    }

    #[test]
    fn iterators_cover_range() {
        let vhos: Vec<_> = all_vhos(3).collect();
        assert_eq!(vhos, vec![VhoId::new(0), VhoId::new(1), VhoId::new(2)]);
        assert_eq!(all_videos(5).count(), 5);
    }

    #[test]
    #[should_panic(expected = "VhoId overflow")]
    fn from_index_overflow_panics() {
        let _ = VhoId::from_index(usize::from(u16::MAX) + 1);
    }
}
