//! Simulated time and the time windows used for link constraints.
//!
//! The paper enforces link-bandwidth constraints at a small set of time
//! slices `T` (Section VI-B), each a window of configurable length
//! (Table V studies 1 s … 1 day). Simulated time is measured in whole
//! seconds from the start of the trace; a month-long trace fits
//! comfortably in a `u64`.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, in seconds since trace start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

pub const SECOND: u64 = 1;
pub const MINUTE: u64 = 60;
pub const HOUR: u64 = 3600;
pub const DAY: u64 = 86_400;
pub const WEEK: u64 = 7 * DAY;

impl SimTime {
    pub const ZERO: Self = Self(0);

    #[inline]
    pub const fn new(secs: u64) -> Self {
        Self(secs)
    }

    #[inline]
    pub const fn secs(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Day index (0-based) this instant falls in.
    #[inline]
    pub const fn day(self) -> u64 {
        self.0 / DAY
    }

    /// Hour-of-day (0..24) this instant falls in.
    #[inline]
    pub const fn hour_of_day(self) -> u64 {
        (self.0 % DAY) / HOUR
    }

    /// Day-of-week (0 = the weekday the trace starts on).
    #[inline]
    pub const fn day_of_week(self) -> u64 {
        self.day() % 7
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Add<u64> for SimTime {
    type Output = Self;
    #[inline]
    fn add(self, rhs: u64) -> Self {
        Self(self.0 + rhs)
    }
}

impl Sub for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Self) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day(),
            self.hour_of_day(),
            (self.0 % HOUR) / MINUTE,
            self.0 % MINUTE
        )
    }
}

/// A half-open window `[start, end)` of simulated time.
///
/// Time slices `t ∈ T` of the MIP are `TimeWindow`s: constraint (6) is
/// enforced against the concurrent-stream profile measured inside each
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    pub start: SimTime,
    pub end: SimTime,
}

impl TimeWindow {
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "window start must not exceed end");
        Self { start, end }
    }

    /// Window of `len` seconds beginning at `start`.
    pub fn of_len(start: SimTime, len: u64) -> Self {
        Self::new(start, start + len)
    }

    #[inline]
    pub fn len_secs(&self) -> u64 {
        self.end - self.start
    }

    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether a stream active during `[s, e)` overlaps this window.
    #[inline]
    pub fn overlaps(&self, s: SimTime, e: SimTime) -> bool {
        s < self.end && self.start < e
    }

    /// Partition `[0, horizon)` into consecutive windows of `len` secs
    /// (the last window may be shorter).
    pub fn tile(horizon: SimTime, len: u64) -> Vec<TimeWindow> {
        assert!(len > 0, "window length must be positive");
        let mut out = Vec::new();
        let mut s = 0;
        while s < horizon.secs() {
            let e = (s + len).min(horizon.secs());
            out.push(TimeWindow::new(SimTime(s), SimTime(e)));
            s = e;
        }
        out
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_accessors() {
        let t = SimTime::new(2 * DAY + 5 * HOUR + 7 * MINUTE + 9);
        assert_eq!(t.day(), 2);
        assert_eq!(t.hour_of_day(), 5);
        assert_eq!(t.day_of_week(), 2);
        assert_eq!(t.to_string(), "d2+05:07:09");
    }

    #[test]
    fn day_of_week_wraps() {
        assert_eq!(SimTime::new(9 * DAY).day_of_week(), 2);
    }

    #[test]
    fn window_contains_and_overlaps() {
        let w = TimeWindow::of_len(SimTime::new(100), 50);
        assert!(w.contains(SimTime::new(100)));
        assert!(w.contains(SimTime::new(149)));
        assert!(!w.contains(SimTime::new(150)));
        // Stream that ends exactly at window start does not overlap.
        assert!(!w.overlaps(SimTime::new(50), SimTime::new(100)));
        assert!(w.overlaps(SimTime::new(50), SimTime::new(101)));
        assert!(w.overlaps(SimTime::new(149), SimTime::new(500)));
        assert!(!w.overlaps(SimTime::new(150), SimTime::new(500)));
    }

    #[test]
    fn tiling_covers_horizon() {
        let tiles = TimeWindow::tile(SimTime::new(250), 100);
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles[0].len_secs(), 100);
        assert_eq!(tiles[2].len_secs(), 50);
        assert_eq!(tiles[2].end, SimTime::new(250));
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_rejected() {
        let _ = TimeWindow::tile(SimTime::new(10), 0);
    }
}
