//! Fuzzed-input hardening for the snapshot container and the JSON
//! parser: arbitrary byte mutations, truncations, and garbage must
//! come back as typed errors — never a panic, never a silently-wrong
//! payload.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use vod_json::snapshot::{self, SnapshotError};
use vod_json::Value;

/// Encode a snapshot via the public file API (temp file round trip).
fn valid_snapshot(kind: &str, version: u32, payload: &[u8]) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("vod-snap-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{kind}-{version}.snap"));
    snapshot::write_snapshot_atomic(&path, kind, version, payload).unwrap();
    std::fs::read(&path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutated_snapshots_yield_typed_errors(
        payload in prop::collection::vec(0u8..=255, 0..200),
        mutations in prop::collection::vec((0usize..4096, 1u8..=255), 1..4),
    ) {
        let mut bytes = valid_snapshot("prop-kind", 7, &payload);
        for &(pos, x) in &mutations {
            let at = pos % bytes.len();
            bytes[at] ^= x;
        }
        // Two mutations may cancel each other out; in every other case
        // the decode must fail with a typed error. What it must never
        // do is panic or hand back altered bytes as if they were good.
        match snapshot::decode(&bytes, "prop-kind", 7) {
            Ok(back) => prop_assert_eq!(back, payload, "corrupt decode must not succeed"),
            Err(
                SnapshotError::Truncated { .. }
                | SnapshotError::BadMagic
                | SnapshotError::KindMismatch { .. }
                | SnapshotError::VersionMismatch { .. }
                | SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Malformed { .. },
            ) => {}
            Err(SnapshotError::Io { .. }) => {
                prop_assert!(false, "in-memory decode cannot produce Io");
            }
        }
    }

    #[test]
    fn truncated_snapshots_yield_typed_errors(
        payload in prop::collection::vec(0u8..=255, 0..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = valid_snapshot("prop-kind", 7, &payload);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(snapshot::decode(&bytes[..cut.min(bytes.len() - 1)], "prop-kind", 7).is_err());
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(0u8..=255, 0..300),
    ) {
        // Any outcome is fine except a panic; random bytes essentially
        // never carry the magic + a matching checksum.
        let _ = snapshot::decode(&bytes, "any-kind", 1);
    }

    #[test]
    fn random_bytes_never_panic_the_json_parser(
        bytes in prop::collection::vec(0u8..=255, 0..300),
    ) {
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = Value::parse(text);
        }
    }

    #[test]
    fn mutated_json_documents_yield_typed_errors(
        n in 0u64..1000,
        mutations in prop::collection::vec((0usize..4096, 1u8..=255), 1..3),
    ) {
        let doc = Value::Obj(vec![
            ("n".to_string(), snapshot::u64_bits_value(n)),
            ("x".to_string(), snapshot::f64_bits_value(n as f64 / 7.0)),
        ]);
        let mut bytes = doc.to_string_pretty().into_bytes();
        for &(pos, x) in &mutations {
            let at = pos % bytes.len();
            bytes[at] ^= x;
        }
        // Mutated JSON either fails to parse (typed JsonError) or
        // parses to some value; decoding the hex fields then either
        // fails typed or round-trips. No path may panic.
        if let Ok(text) = std::str::from_utf8(&bytes) {
            if let Ok(v) = Value::parse(text) {
                if let Some(field) = v.get("n") {
                    let _ = snapshot::u64_from_bits_value(field, "n");
                }
                if let Some(field) = v.get("x") {
                    let _ = snapshot::f64_from_bits_value(field, "x");
                }
            }
        }
    }
}
