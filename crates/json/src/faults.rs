//! Injectable I/O faults for the snapshot layer.
//!
//! Storage robustness drills need to answer "what happens when the disk
//! fails *here*?" without root privileges, loopback filesystems, or a
//! genuinely full disk. This module puts a process-global, seedable
//! fault schedule in front of every snapshot read and write: the
//! service and its tests keep calling the ordinary [`crate::snapshot`]
//! API, and an installed [`FaultPlan`] decides which operation fails
//! with which `errno`.
//!
//! Design constraints:
//! - **deterministic** — faults fire by *operation index* (the Nth
//!   write, the Mth read while the shim is installed), never by clock
//!   or randomness, so chaos twins replay bit-identically;
//! - **near-zero default cost** — with no shim installed each hook is
//!   one uncontended mutex lock per snapshot op, and snapshot I/O is
//!   rare by construction (one durable step per service transition);
//! - **process-global, test-serialized** — [`install`] holds a global
//!   gate for the lifetime of the returned [`ShimHandle`], so
//!   concurrent `#[test]`s cannot interleave their schedules.
//!
//! The shim only fronts the snapshot container code in this crate
//! ([`crate::snapshot`]); the `xtask` lint rule `io-fault-shim` denies
//! snapshot-adjacent code paths that would bypass it with direct
//! `std::fs` calls.

use std::fmt;
use std::io;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One injectable storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The write fails immediately with `ENOSPC`; no bytes land.
    WriteEnospc,
    /// The temp file receives only the first `keep` bytes, then the
    /// write fails with `ENOSPC` — a torn write that leaves a stray
    /// partial temp file for the cleanup path to deal with.
    WritePartial { keep: usize },
    /// The payload is written in full but the durability barrier fails
    /// with `EIO` before the rename, so the destination keeps its old
    /// contents — "data in the page cache, disk said no".
    FsyncFail,
    /// The read fails with `EIO` — unreadable sector under a snapshot.
    ReadEio,
}

impl IoFault {
    /// Stable lower-case tag, used in drill records and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IoFault::WriteEnospc => "write-enospc",
            IoFault::WritePartial { .. } => "write-partial",
            IoFault::FsyncFail => "fsync-fail",
            IoFault::ReadEio => "read-eio",
        }
    }

    /// True for faults that may fire on the write path.
    #[must_use]
    pub fn is_write_fault(self) -> bool {
        !matches!(self, IoFault::ReadEio)
    }
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoFault::WritePartial { keep } => write!(f, "write-partial(keep={keep})"),
            other => f.write_str(other.name()),
        }
    }
}

/// A deterministic fault schedule, addressed by operation index.
///
/// Indices count operations *since the shim was installed*: write index
/// `n` is the `n`-th call to [`crate::snapshot::write_atomic`] (every
/// snapshot writer funnels through it), read index `m` the `m`-th
/// snapshot read ([`crate::snapshot::read_snapshot`] or
/// [`crate::snapshot::peek_kind`]). Unmentioned indices succeed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(write op index, fault)` pairs; each fault must satisfy
    /// [`IoFault::is_write_fault`].
    pub writes: Vec<(u64, IoFault)>,
    /// Read op indices that fail with `EIO`.
    pub reads: Vec<u64>,
}

impl FaultPlan {
    /// A plan that fails the single write at `index` with `fault`.
    #[must_use]
    pub fn one_write(index: u64, fault: IoFault) -> Self {
        FaultPlan {
            writes: vec![(index, fault)],
            reads: Vec::new(),
        }
    }

    /// A plan that fails the single read at `index` with `EIO`.
    #[must_use]
    pub fn one_read(index: u64) -> Self {
        FaultPlan {
            writes: Vec::new(),
            reads: vec![index],
        }
    }
}

struct Shim {
    plan: FaultPlan,
    writes_seen: u64,
    reads_seen: u64,
}

static GATE: Mutex<()> = Mutex::new(());
static SHIM: Mutex<Option<Shim>> = Mutex::new(None);

fn shim_slot() -> MutexGuard<'static, Option<Shim>> {
    // A panicking test must not wedge every later drill: the slot holds
    // plain data, so the poison flag carries no integrity meaning.
    SHIM.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Exclusive handle on the installed fault schedule. Dropping it (or a
/// panic unwinding past it) uninstalls the shim and releases the global
/// gate, so a failed test cannot leak faults into the next one.
pub struct ShimHandle {
    _gate: MutexGuard<'static, ()>,
}

impl fmt::Debug for ShimHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShimHandle")
            .field("writes_seen", &self.writes_seen())
            .field("reads_seen", &self.reads_seen())
            .finish()
    }
}

impl ShimHandle {
    /// Write operations observed since [`install`].
    #[must_use]
    pub fn writes_seen(&self) -> u64 {
        shim_slot().as_ref().map_or(0, |s| s.writes_seen)
    }

    /// Read operations observed since [`install`].
    #[must_use]
    pub fn reads_seen(&self) -> u64 {
        shim_slot().as_ref().map_or(0, |s| s.reads_seen)
    }
}

impl Drop for ShimHandle {
    fn drop(&mut self) {
        *shim_slot() = None;
    }
}

/// Install a fault schedule, returning the RAII handle that keeps it
/// active. Blocks until any previously installed shim is dropped.
///
/// # Panics
/// If `plan.writes` schedules [`IoFault::ReadEio`] on the write path —
/// that is a malformed drill, not a runtime condition.
#[must_use]
pub fn install(plan: FaultPlan) -> ShimHandle {
    for &(at, fault) in &plan.writes {
        assert!(
            fault.is_write_fault(),
            "fault plan schedules {fault} at write op {at}, but it is not a write fault"
        );
    }
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    *shim_slot() = Some(Shim {
        plan,
        writes_seen: 0,
        reads_seen: 0,
    });
    ShimHandle { _gate: gate }
}

/// Consult the schedule for the next write operation.
pub(crate) fn on_write() -> Option<IoFault> {
    let mut slot = shim_slot();
    let shim = slot.as_mut()?;
    let at = shim.writes_seen;
    shim.writes_seen += 1;
    shim.plan
        .writes
        .iter()
        .find(|(idx, _)| *idx == at)
        .map(|&(_, fault)| fault)
}

/// Consult the schedule for the next read operation.
pub(crate) fn on_read() -> Option<io::Error> {
    let mut slot = shim_slot();
    let shim = slot.as_mut()?;
    let at = shim.reads_seen;
    shim.reads_seen += 1;
    shim.plan
        .reads
        .contains(&at)
        .then(|| io::Error::from_raw_os_error(libc_eio()))
}

/// `ENOSPC` as an [`io::Error`] (errno 28 on Linux).
pub(crate) fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28)
}

/// `EIO` errno (5 on Linux).
fn libc_eio() -> i32 {
    5
}

/// `EIO` as an [`io::Error`].
pub(crate) fn eio() -> io::Error {
    io::Error::from_raw_os_error(libc_eio())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_by_operation_index_and_clear_on_drop() {
        {
            let handle = install(FaultPlan {
                writes: vec![(1, IoFault::WriteEnospc)],
                reads: vec![0],
            });
            assert!(on_write().is_none(), "write 0 is clean");
            assert_eq!(on_write(), Some(IoFault::WriteEnospc), "write 1 faults");
            assert!(on_write().is_none(), "write 2 is clean again");
            assert_eq!(on_read().map(|e| e.raw_os_error()), Some(Some(5)));
            assert!(on_read().is_none());
            assert_eq!(handle.writes_seen(), 3);
            assert_eq!(handle.reads_seen(), 2);
        }
        // Uninstalled: everything succeeds and nothing is counted.
        assert!(on_write().is_none());
        assert!(on_read().is_none());
    }

    #[test]
    fn errnos_and_names_are_stable() {
        assert_eq!(enospc().raw_os_error(), Some(28));
        assert_eq!(eio().raw_os_error(), Some(5));
        assert_eq!(IoFault::WriteEnospc.name(), "write-enospc");
        assert_eq!(
            IoFault::WritePartial { keep: 7 }.to_string(),
            "write-partial(keep=7)"
        );
        assert_eq!(IoFault::FsyncFail.name(), "fsync-fail");
        assert_eq!(IoFault::ReadEio.name(), "read-eio");
        assert!(!IoFault::ReadEio.is_write_fault());
    }

    #[test]
    #[should_panic(expected = "not a write fault")]
    fn read_faults_on_the_write_path_are_a_malformed_drill() {
        let _ = install(FaultPlan::one_write(0, IoFault::ReadEio));
    }
}
