//! Crash-safe snapshot persistence: a checksummed, versioned container
//! for checkpoint and state files, written atomically.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"VODSNAP1"
//! 8       1     kind length K (short ASCII tag, e.g. "solver-checkpoint")
//! 9       K     kind bytes
//! 9+K     4     payload format version (u32)
//! 13+K    8     payload length N (u64)
//! 21+K    8     FNV-1a 64 checksum of the payload bytes (u64)
//! 29+K    N     payload
//! ```
//!
//! Readers return a typed [`SnapshotError`] on *any* malformed input —
//! truncation, bit flips, wrong kind, wrong version — and never panic:
//! a crashed writer or a corrupted disk must degrade into a recovery
//! path, not take the supervisor down with it.
//!
//! Writers go through [`write_snapshot_atomic`]: the bytes land in a
//! sibling `*.tmp` file which is then `rename`d over the destination,
//! so a reader never observes a half-written snapshot (rename is atomic
//! on POSIX filesystems). The `xtask` lint rule `snapshot-io` pins this:
//! direct `File::create`/`fs::write` on snapshot paths is denied
//! elsewhere in the workspace.

use crate::{JsonError, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// File magic, also the container format version ("…P1").
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"VODSNAP1";

/// Header bytes before the kind tag: magic + kind length.
const FIXED_PREFIX: usize = 8 + 1;
/// Header bytes after the kind tag: version + payload length + checksum.
const FIXED_SUFFIX: usize = 4 + 8 + 8;

/// Typed failure of a snapshot read or write. Every variant is a
/// recoverable condition; none of the decode paths can panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error (file missing, permissions, rename failure).
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// The file ends before the declared header + payload.
    Truncated { expected: usize, found: usize },
    /// The first bytes are not `VODSNAP1` — not a snapshot at all.
    BadMagic,
    /// The snapshot holds a different kind of state than requested.
    KindMismatch { expected: String, found: String },
    /// The payload was written by an incompatible format version.
    VersionMismatch { expected: u32, found: u32 },
    /// The payload checksum does not match: bytes were altered.
    ChecksumMismatch { expected: u64, found: u64 },
    /// Structurally invalid contents (bad UTF-8, trailing bytes, or an
    /// undecodable payload).
    Malformed { what: String },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot io error at {}: {source}", path.display())
            }
            SnapshotError::Truncated { expected, found } => {
                write!(f, "snapshot truncated: need {expected} bytes, have {found}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot kind mismatch: expected {expected:?}, found {found:?}"
                )
            }
            SnapshotError::VersionMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot version mismatch: expected {expected}, found {found}"
                )
            }
            SnapshotError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
                )
            }
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit hash — the payload checksum. Not cryptographic; it
/// guards against truncation and bit rot, not adversaries.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize a snapshot container around `payload`.
fn encode(kind: &str, version: u32, payload: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    let Ok(kind_len) = u8::try_from(kind.len()) else {
        return Err(SnapshotError::Malformed {
            what: format!("kind tag too long ({} bytes, max 255)", kind.len()),
        });
    };
    let mut out = Vec::with_capacity(FIXED_PREFIX + kind.len() + FIXED_SUFFIX + payload.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.push(kind_len);
    out.extend_from_slice(kind.as_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decode a snapshot container, checking magic, kind, version and
/// checksum. Returns the payload bytes.
pub fn decode(bytes: &[u8], kind: &str, version: u32) -> Result<Vec<u8>, SnapshotError> {
    let need = |n: usize| -> Result<(), SnapshotError> {
        if bytes.len() < n {
            Err(SnapshotError::Truncated {
                expected: n,
                found: bytes.len(),
            })
        } else {
            Ok(())
        }
    };
    need(FIXED_PREFIX)?;
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let kind_len = usize::from(bytes[8]);
    let kind_end = FIXED_PREFIX + kind_len;
    need(kind_end + FIXED_SUFFIX)?;
    let found_kind = match std::str::from_utf8(&bytes[FIXED_PREFIX..kind_end]) {
        Ok(s) => s,
        Err(_) => {
            return Err(SnapshotError::Malformed {
                what: "kind tag is not UTF-8".to_string(),
            })
        }
    };
    if found_kind != kind {
        return Err(SnapshotError::KindMismatch {
            expected: kind.to_string(),
            found: found_kind.to_string(),
        });
    }
    let le_u32 = |at: usize| -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&bytes[at..at + 4]);
        u32::from_le_bytes(b)
    };
    let le_u64 = |at: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[at..at + 8]);
        u64::from_le_bytes(b)
    };
    let found_version = le_u32(kind_end);
    if found_version != version {
        return Err(SnapshotError::VersionMismatch {
            expected: version,
            found: found_version,
        });
    }
    let payload_len = le_u64(kind_end + 4);
    let declared_sum = le_u64(kind_end + 12);
    let body = kind_end + FIXED_SUFFIX;
    let Some(payload_len) = usize::try_from(payload_len).ok().filter(|n| {
        // A length that overflows the file size is truncation (or a
        // corrupt length field — indistinguishable, same recovery).
        body.checked_add(*n).is_some()
    }) else {
        return Err(SnapshotError::Truncated {
            expected: usize::MAX,
            found: bytes.len(),
        });
    };
    need(body + payload_len)?;
    if bytes.len() > body + payload_len {
        return Err(SnapshotError::Malformed {
            what: format!(
                "{} trailing bytes after declared payload",
                bytes.len() - body - payload_len
            ),
        });
    }
    let payload = &bytes[body..];
    let actual = fnv1a64(payload);
    if actual != declared_sum {
        return Err(SnapshotError::ChecksumMismatch {
            expected: declared_sum,
            found: actual,
        });
    }
    Ok(payload.to_vec())
}

/// Sibling temp path for the atomic write: `<file>.tmp` in the same
/// directory (rename is only atomic within one filesystem).
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write raw bytes atomically: temp file in the same directory, then
/// rename over the destination. On success a reader at any instant sees
/// either the old complete file or the new complete file, never a
/// partial write. On *any* failure — real or injected via
/// [`crate::faults`] — the temp file is removed best-effort, so a
/// failed write leaves the destination untouched and no stray `*.tmp`
/// behind.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = tmp_path(path);
    let result = write_atomic_inner(path, &tmp, bytes);
    if result.is_err() {
        // Best-effort: the partial temp file is garbage whether the
        // failure was a short write or a failed rename. Ignoring the
        // secondary error is deliberate — the primary one is reported.
        // (Removal deliberately bypasses the fault shim, which hooks
        // only reads and writes: an injected fault must never make its
        // own debris uncollectable.)
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_atomic_inner(path: &Path, tmp: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let io_err = |p: &Path, source: std::io::Error| SnapshotError::Io {
        path: p.to_path_buf(),
        source,
    };
    match crate::faults::on_write() {
        Some(crate::faults::IoFault::WriteEnospc) => {
            return Err(io_err(tmp, crate::faults::enospc()));
        }
        Some(crate::faults::IoFault::WritePartial { keep }) => {
            // Torn write: some bytes land in the temp file, then the
            // device runs out of space. The destination is untouched.
            // lint:allow(snapshot-io): the torn prefix IS the injected
            // damage — tearing it atomically would defeat the point.
            // lint:allow(io-fault-shim): fault-injection writes the torn
            // prefix directly; routing it through the shim would recurse.
            let _ = std::fs::write(tmp, &bytes[..keep.min(bytes.len())]);
            return Err(io_err(tmp, crate::faults::enospc()));
        }
        Some(crate::faults::IoFault::FsyncFail) => {
            // The payload is written in full but the durability barrier
            // fails, so the rename is never attempted.
            // lint:allow(snapshot-io): see WritePartial above.
            // lint:allow(io-fault-shim): see WritePartial above.
            std::fs::write(tmp, bytes).map_err(|e| io_err(tmp, e))?;
            return Err(io_err(tmp, crate::faults::eio()));
        }
        Some(crate::faults::IoFault::ReadEio) | None => {}
    }
    // lint:allow(snapshot-io): this IS the atomic write helper every
    // other snapshot/results writer is required to route through.
    // lint:allow(io-fault-shim): and the shim hook above is its fault
    // schedule, so the raw calls here are the single sanctioned pair.
    std::fs::write(tmp, bytes).map_err(|e| io_err(tmp, e))?;
    std::fs::rename(tmp, path).map_err(|e| io_err(path, e))
}

/// Write a checksummed snapshot atomically.
pub fn write_snapshot_atomic(
    path: &Path,
    kind: &str,
    version: u32,
    payload: &[u8],
) -> Result<(), SnapshotError> {
    write_atomic(path, &encode(kind, version, payload)?)
}

/// Inspect a snapshot *header* without validating the payload: the
/// `(kind, version)` pair the file claims to hold. Recovery paths use
/// this to diagnose what a stray state file is — e.g. a checkpoint
/// left by a different pipeline generation — before deciding how to
/// treat it. The payload may still be truncated or corrupt; only a
/// full [`read_snapshot`] vouches for the bytes. Never panics.
pub fn peek_kind(path: &Path) -> Result<(String, u32), SnapshotError> {
    let bytes = read_all(path)?;
    if bytes.len() < FIXED_PREFIX {
        return Err(SnapshotError::Truncated {
            expected: FIXED_PREFIX,
            found: bytes.len(),
        });
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let kind_end = FIXED_PREFIX + usize::from(bytes[8]);
    if bytes.len() < kind_end + 4 {
        return Err(SnapshotError::Truncated {
            expected: kind_end + 4,
            found: bytes.len(),
        });
    }
    let kind = match std::str::from_utf8(&bytes[FIXED_PREFIX..kind_end]) {
        Ok(s) => s.to_string(),
        Err(_) => {
            return Err(SnapshotError::Malformed {
                what: "kind tag is not UTF-8".to_string(),
            })
        }
    };
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[kind_end..kind_end + 4]);
    Ok((kind, u32::from_le_bytes(v)))
}

/// Snapshot read with the fault schedule consulted first: an injected
/// `EIO` surfaces exactly like an unreadable sector would.
fn read_all(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    let io_err = |source: std::io::Error| SnapshotError::Io {
        path: path.to_path_buf(),
        source,
    };
    if let Some(e) = crate::faults::on_read() {
        return Err(io_err(e));
    }
    // lint:allow(io-fault-shim): the shim hook above IS this read's
    // fault schedule; every snapshot reader funnels through here.
    std::fs::read(path).map_err(io_err)
}

/// Read and verify a snapshot, returning the payload bytes.
pub fn read_snapshot(path: &Path, kind: &str, version: u32) -> Result<Vec<u8>, SnapshotError> {
    let bytes = read_all(path)?;
    decode(&bytes, kind, version)
}

/// Write a [`Value`] payload as a checksummed snapshot.
pub fn write_json_snapshot(
    path: &Path,
    kind: &str,
    version: u32,
    value: &Value,
) -> Result<(), SnapshotError> {
    write_snapshot_atomic(path, kind, version, value.to_string_pretty().as_bytes())
}

/// Read a snapshot whose payload is a JSON document.
pub fn read_json_snapshot(path: &Path, kind: &str, version: u32) -> Result<Value, SnapshotError> {
    let payload = read_snapshot(path, kind, version)?;
    let text = String::from_utf8(payload).map_err(|_| SnapshotError::Malformed {
        what: "payload is not UTF-8".to_string(),
    })?;
    Value::parse(&text).map_err(|e: JsonError| SnapshotError::Malformed {
        what: format!("payload is not valid JSON: {e}"),
    })
}

// ---------------------------------------------------------------------------
// Bit-exact numeric encoding.
//
// JSON `Value` carries every number as `f64` and prints non-finite
// values as `null`, so neither `u64` counters above 2^53 nor exact
// float bit patterns survive a plain `Num` round trip. Checkpoints —
// whose whole point is byte-identical resume — therefore encode f64s
// and u64s as fixed-width hex strings of their bit patterns.
// ---------------------------------------------------------------------------

/// Encode an `f64` losslessly as its IEEE-754 bit pattern in hex.
#[must_use]
pub fn f64_bits_value(x: f64) -> Value {
    Value::Str(format!("{:016x}", x.to_bits()))
}

/// Encode a `u64` losslessly as hex.
#[must_use]
pub fn u64_bits_value(x: u64) -> Value {
    Value::Str(format!("{x:016x}"))
}

fn hex_u64(v: &Value, what: &str) -> Result<u64, SnapshotError> {
    let malformed = || SnapshotError::Malformed {
        what: format!("{what}: expected a 16-digit hex string"),
    };
    let s = v.as_str().ok_or_else(malformed)?;
    if s.len() != 16 {
        return Err(malformed());
    }
    u64::from_str_radix(s, 16).map_err(|_| malformed())
}

/// Decode an [`f64_bits_value`]-encoded float.
pub fn f64_from_bits_value(v: &Value, what: &str) -> Result<f64, SnapshotError> {
    hex_u64(v, what).map(f64::from_bits)
}

/// Decode a [`u64_bits_value`]-encoded integer.
pub fn u64_from_bits_value(v: &Value, what: &str) -> Result<u64, SnapshotError> {
    hex_u64(v, what)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vod-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip() {
        let path = tmp_dir().join("rt.snap");
        write_snapshot_atomic(&path, "test-kind", 3, b"hello payload").unwrap();
        let back = read_snapshot(&path, "test-kind", 3).unwrap();
        assert_eq!(back, b"hello payload");
        // No temp file left behind.
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn empty_payload_round_trips() {
        let path = tmp_dir().join("empty.snap");
        write_snapshot_atomic(&path, "k", 1, b"").unwrap();
        assert_eq!(read_snapshot(&path, "k", 1).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncation_is_typed() {
        let full = encode("k", 1, b"some payload bytes").unwrap();
        for cut in 0..full.len() {
            let err = decode(&full[..cut], "k", 1).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn corruption_is_typed() {
        let mut bytes = encode("k", 1, b"payload under test").unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a payload bit
        let err = decode(&bytes, "k", 1).expect_err("corrupt payload must fail");
        assert!(
            matches!(err, SnapshotError::ChecksumMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn kind_and_version_mismatches() {
        let bytes = encode("alpha", 2, b"x").unwrap();
        assert!(matches!(
            decode(&bytes, "beta", 2),
            Err(SnapshotError::KindMismatch { .. })
        ));
        assert!(matches!(
            decode(&bytes, "alpha", 3),
            Err(SnapshotError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut bytes = encode("k", 1, b"p").unwrap();
        bytes.push(0);
        assert!(matches!(
            decode(&bytes, "k", 1),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn missing_file_is_io() {
        let err = read_snapshot(Path::new("/nonexistent/definitely/not.snap"), "k", 1)
            .expect_err("missing file");
        assert!(matches!(err, SnapshotError::Io { .. }));
    }

    #[test]
    fn json_payload_round_trips() {
        let path = tmp_dir().join("doc.snap");
        let doc = Value::Obj(vec![
            ("a".to_string(), f64_bits_value(std::f64::consts::PI)),
            ("b".to_string(), u64_bits_value(u64::MAX - 1)),
        ]);
        write_json_snapshot(&path, "doc", 1, &doc).unwrap();
        let back = read_json_snapshot(&path, "doc", 1).unwrap();
        let a = f64_from_bits_value(back.get("a").unwrap(), "a").unwrap();
        let b = u64_from_bits_value(back.get("b").unwrap(), "b").unwrap();
        assert_eq!(a.to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(b, u64::MAX - 1);
    }

    #[test]
    fn bit_exact_float_encoding_covers_specials() {
        for x in [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-308,
        ] {
            let v = f64_bits_value(x);
            let back = f64_from_bits_value(&v, "x").unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn bad_hex_is_malformed() {
        for v in [
            Value::Str("zz".to_string()),
            Value::Str("0123".to_string()),
            Value::Num(1.0),
            Value::Null,
        ] {
            assert!(f64_from_bits_value(&v, "x").is_err());
            assert!(u64_from_bits_value(&v, "x").is_err());
        }
    }

    #[test]
    fn peek_reads_header_without_payload_validation() {
        let path = tmp_dir().join("peek.snap");
        write_snapshot_atomic(&path, "peek-kind", 7, b"payload").unwrap();
        assert_eq!(peek_kind(&path).unwrap(), ("peek-kind".to_string(), 7));
        // Corrupt the payload: a full read fails, the peek still
        // answers (that is its point — diagnosing damaged files).
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        write_atomic(&path, &bytes).unwrap();
        assert!(read_snapshot(&path, "peek-kind", 7).is_err());
        assert_eq!(peek_kind(&path).unwrap(), ("peek-kind".to_string(), 7));
    }

    #[test]
    fn peek_failures_are_typed() {
        let dir = tmp_dir();
        let missing = dir.join("nope.snap");
        assert!(matches!(peek_kind(&missing), Err(SnapshotError::Io { .. })));
        let garbage = dir.join("garbage.snap");
        write_atomic(&garbage, b"NOTSNAP!xxxx").unwrap();
        assert!(matches!(peek_kind(&garbage), Err(SnapshotError::BadMagic)));
        let full = encode("k", 1, b"x").unwrap();
        for cut in [0usize, 4, FIXED_PREFIX] {
            let short = dir.join(format!("short{cut}.snap"));
            write_atomic(&short, &full[..cut]).unwrap();
            assert!(matches!(
                peek_kind(&short),
                Err(SnapshotError::Truncated { .. } | SnapshotError::BadMagic)
            ));
        }
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
