//! Minimal JSON support for result files and scenario persistence.
//!
//! The workspace cannot depend on `serde`/`serde_json` (the build
//! environment is fully offline), and its serialization needs are
//! small: write experiment payloads under `results/` and round-trip
//! [`Network`]-style structs. This crate provides a [`Value`] tree, a
//! strict recursive-descent parser, a deterministic pretty printer, and
//! a [`ToJson`] conversion trait for the payload shapes the bench
//! binaries produce.
//!
//! Determinism notes:
//! - objects are ordered `Vec<(String, Value)>`, so key order is
//!   exactly insertion order — no hash-map iteration anywhere;
//! - non-finite floats (`NaN`, `±inf`) print as `null`, mirroring
//!   `serde_json`'s rejection of them but without aborting a run whose
//!   tables legitimately contain "not measured" cells.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

use std::fmt::Write as _;

pub mod faults;
pub mod snapshot;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; every integer the workspace
    /// serializes fits in the 53-bit exact range.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered key/value pairs (not a map on purpose).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer accessor: `Some` only when the number is a non-negative
    /// integer small enough to be represented exactly.
    // Exact-integer check and in-range cast; the comparisons and the
    // cast are the point of this function.
    #[allow(clippy::float_cmp, clippy::cast_possible_truncation)]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.trunc() == *x && *x < 9.0e15 => Some(*x as usize),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. Strict: exactly one value, no trailing
    /// garbage, no comments, no trailing commas.
    pub fn parse(s: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Render with two-space indentation and a trailing newline-free
    /// final line, matching the layout `serde_json::to_string_pretty`
    /// produced for the existing result files.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_number(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

// The integer fast path needs an exact-value comparison and an
// in-range float-to-int cast; both are guarded.
#[allow(clippy::float_cmp, clippy::cast_possible_truncation)]
fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // serde_json refuses non-finite floats; result tables use NaN
        // for "not measured", so print the JSON-representable null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: JSON escapes astral
                            // chars as two \u escapes.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Conversion into a [`Value`]. Implemented for the primitive and
/// container shapes the bench payloads use; experiment-specific structs
/// implement it by hand (an `Obj` with their field names).
pub trait ToJson {
    fn to_value(&self) -> Value;
}

impl ToJson for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i32, i64);

impl ToJson for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_value).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_value).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_to_json {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

tuple_to_json!(A: 0, B: 1);
tuple_to_json!(A: 0, B: 1, C: 2);
tuple_to_json!(A: 0, B: 1, C: 2, D: 3);
tuple_to_json!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_to_json!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Shorthand for building an object value in field order.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Render any [`ToJson`] payload with pretty indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(payload: &T) -> String {
    payload.to_value().to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = obj(vec![
            ("title", Value::Str("Table III".into())),
            (
                "rows",
                (vec![
                    (1u32, 2.5f64, "a".to_string()),
                    (2, 3.5, "b\"q\\".to_string()),
                ])
                .to_value(),
            ),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", Value::Obj(vec![])),
            ("flag", Value::Bool(true)),
            ("missing", Value::Null),
        ]);
        let text = doc.to_string_pretty();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("title").unwrap().as_str(), Some("Table III"));
        assert_eq!(back.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(back.get("rows").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Value::Num(3.0).to_string_pretty(), "3");
        assert_eq!(Value::Num(-17.0).to_string_pretty(), "-17");
        assert_eq!(Value::Num(0.5).to_string_pretty(), "0.5");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Num(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string_pretty(), "null");
        let payload = vec![(1usize, f64::NAN)];
        assert_eq!(
            to_string_pretty(&payload),
            "[\n  [\n    1,\n    null\n  ]\n]"
        );
    }

    #[test]
    fn option_maps_to_null() {
        let xs: Vec<Option<f64>> = vec![Some(1.5), None];
        let v = xs.to_value();
        assert_eq!(v, Value::Arr(vec![Value::Num(1.5), Value::Null]));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Value::parse(r#"["a\nb", "A", "😀", "\\"]"#).unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_str(), Some("a\nb"));
        assert_eq!(items[1].as_str(), Some("A"));
        assert_eq!(items[2].as_str(), Some("😀"));
        assert_eq!(items[3].as_str(), Some("\\"));
    }

    #[test]
    fn parses_numbers() {
        let v = Value::parse("[0, -1, 2.5, 1e3, -2.5E-2]").unwrap();
        let xs: Vec<f64> = v
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(xs, vec![0.0, -1.0, 2.5, 1000.0, -0.025]);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "[1] x",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn strict_trailing_garbage_offset() {
        let err = Value::parse("[1] junk").unwrap_err();
        assert_eq!(err.offset, 4);
    }
}
