//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`, `sample_iter`), the
//! [`distributions::Standard`] distribution, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through the SplitMix64
//! finalizer. It is *not* the upstream `StdRng` (ChaCha12), so absolute
//! random streams differ from real `rand`, but every property the
//! workspace relies on holds: determinism for equal seeds, stream
//! independence for distinct seeds, and uniformity good enough for
//! synthetic workloads. No code here touches OS entropy — all
//! construction is from explicit seeds, which is exactly the
//! reproducibility contract `vod_model::rng` enforces.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// The workspace's standard deterministic generator (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference
        // implementation, transcribed).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

pub mod rngs {
    pub use super::StdRng;
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`, mirroring
    /// `rand::distributions::Distribution`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The `Standard` distribution: uniform over the full integer range,
    /// uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits -> [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Iterator adapter returned by [`crate::Rng::sample_iter`].
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

/// A range usable with [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo reduction: bias is < span/2^64, negligible for
                // the workload sizes simulated here.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128 % span)) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                ((lo as i128) + (rng.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        use distributions::Distribution;
        let u: f64 = distributions::Standard.sample(rng);
        // u in [0, 1) keeps the result in [start, end).
        self.start + u * (self.end - self.start)
    }
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching rand's element-order contract
            // (uniform over permutations), not its exact stream.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(-0.0f64..2.5);
            assert!((0.0..2.5).contains(&x));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(8);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn sample_iter_matches_gen() {
        let xs: Vec<u32> = StdRng::seed_from_u64(9)
            .sample_iter(distributions::Standard)
            .take(4)
            .collect();
        let mut rng = StdRng::seed_from_u64(9);
        let ys: Vec<u32> = (0..4).map(|_| rng.gen()).collect();
        assert_eq!(xs, ys);
    }
}
