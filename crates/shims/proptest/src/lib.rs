//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors
//! the subset of proptest the workspace's property tests use:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header,
//! - numeric range strategies (`0u8..4`, `3.0f64..20.0`, ...),
//!   tuple strategies, `any::<bool>()`, and
//!   [`prop::collection::vec`],
//! - [`prop_assert!`] / [`prop_assert_eq!`] and [`TestCaseError`].
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed sequence (case index -> SplitMix64 stream), and
//! there is **no shrinking** — a failing case reports its index and
//! message, and rerunning reproduces it exactly. For a reproduction
//! repo whose whole point is bit-stable runs, deterministic cases are a
//! feature, not a loss.

use std::fmt;

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(case: u64) -> Self {
        // Offset so that case 0 does not start at raw state 0.
        Self {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value-generation strategy (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Marker returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Failure of one generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the cross-crate suites
        // fast while still exercising a meaningful sample (cases are
        // deterministic, so more cases only widen coverage, not
        // reproducibility).
        Self { cases: 64 }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection as _collection;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// The test-defining macro. Each function runs `cases` deterministic
/// cases; a failing case panics with its index so it can be replayed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    config.cases,
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })()
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Driver used by the [`proptest!`] expansion.
pub fn run_cases(
    name: &str,
    cases: u32,
    mut run: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..cases {
        let mut rng = TestRng::for_case(u64::from(case));
        if let Err(e) = run(&mut rng) {
            panic!("proptest {name}: case {case}/{cases} failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{run_cases, TestRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(a in 2u32..9, b in 0.5f64..2.0, c in 1usize..=4usize) {
            prop_assert!((2..9).contains(&a));
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_strategy_length(v in prop::collection::vec((0u8..4, 0u32..10), 1..30)) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for (x, y) in v {
                prop_assert!(x < 4, "x out of range: {x}");
                prop_assert_eq!(y.min(9), y);
            }
        }

        #[test]
        fn bools_take_both_values(bits in prop::collection::vec(any::<bool>(), 64..65)) {
            prop_assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "case 0/")]
    fn failing_case_reports_index() {
        run_cases("demo", 5, |_| Err(TestCaseError::fail("boom")));
    }
}
