//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the benchmark API surface the workspace's `benches/` use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId::from_parameter`,
//! `Bencher::iter`, and `black_box` — backed by a simple
//! median-of-samples wall-clock timer instead of criterion's full
//! statistical machinery. Output goes to stdout, one line per
//! benchmark.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exported opaque-value barrier, preventing the optimizer from
/// deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.to_string(), sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        Self(p.to_string())
    }

    pub fn new(name: impl Display, p: impl Display) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one sample of `routine` per outstanding sample slot.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    // Warm-up sample, discarded.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let (lo, hi) = (
        bencher.samples.first().copied().unwrap_or_default(),
        bencher.samples.last().copied().unwrap_or_default(),
    );
    println!("bench {label}: median {median:?} (min {lo:?}, max {hi:?}, n={sample_size})");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(2);
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(42u64), &42u64, |b, &n| {
            b.iter(|| {
                seen = n;
            })
        });
        assert_eq!(seen, 42);
    }
}
