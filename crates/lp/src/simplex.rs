//! Dense two-phase tableau simplex.
//!
//! Classical textbook implementation: standardize to `Ax = b, x ≥ 0`
//! with slack/surplus/artificial columns, minimize the artificial sum
//! in phase 1, then the true objective in phase 2. Entering column by
//! Dantzig's rule, switching to Bland's rule (which provably cannot
//! cycle) once the iteration count suggests stalling; leaving row by
//! the minimum-ratio test with smallest-basic-variable tie-breaking.
//!
//! The dense tableau is exactly what makes the generic approach
//! memory-hungry on placement LPs (Table III); that is intentional —
//! see the crate docs.

use crate::problem::{Cmp, LinearProgram, LpError, LpSolution};

const TOL: f64 = 1e-9;

struct Tableau {
    /// `rows × (cols + 1)` matrix, last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Reduced-cost row (same width as `a` rows); last entry is the
    /// negated objective value.
    cost: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of columns excluding RHS.
    cols: usize,
    /// First artificial column (artificials occupy `art_start..cols`).
    art_start: usize,
    iterations: usize,
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.a[r][self.cols]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for x in &mut self.a[row] {
            *x *= inv;
        }
        // Clean the pivot entry exactly.
        self.a[row][col] = 1.0;
        for r in 0..self.a.len() {
            if r != row {
                let factor = self.a[r][col];
                if factor != 0.0 {
                    // Row operation: a[r] -= factor * a[row].
                    let (head, tail) = if r < row {
                        let (h, t) = self.a.split_at_mut(row);
                        (&mut h[r], &t[0])
                    } else {
                        let (h, t) = self.a.split_at_mut(r);
                        (&mut t[0], &h[row])
                    };
                    for (x, &p) in head.iter_mut().zip(tail.iter()) {
                        *x -= factor * p;
                    }
                    head[col] = 0.0;
                }
            }
        }
        let factor = self.cost[col];
        if factor != 0.0 {
            for (x, &p) in self.cost.iter_mut().zip(self.a[row].iter()) {
                *x -= factor * p;
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Run simplex iterations on the current cost row until optimal.
    /// `allow_artificial` permits artificial columns to enter (phase 1
    /// pivoting among artificials is harmless; phase 2 forbids them).
    fn optimize(&mut self, allow_artificial: bool, max_iters: usize) -> Result<(), LpError> {
        let bland_after = max_iters / 2;
        let mut local_iters = 0;
        loop {
            let limit = if allow_artificial {
                self.cols
            } else {
                self.art_start
            };
            // Entering column.
            let entering = if local_iters < bland_after {
                // Dantzig: most negative reduced cost.
                let mut best: Option<(usize, f64)> = None;
                for j in 0..limit {
                    let c = self.cost[j];
                    if c < -TOL && best.is_none_or(|(_, bc)| c < bc) {
                        best = Some((j, c));
                    }
                }
                best.map(|(j, _)| j)
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..limit).find(|&j| self.cost[j] < -TOL)
            };
            let Some(col) = entering else {
                return Ok(());
            };
            // Leaving row: min ratio, tie-break smallest basic var.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let coef = self.a[r][col];
                if coef > TOL {
                    let ratio = self.rhs(r) / coef;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - TOL
                                || (ratio < bratio + TOL && self.basis[r] < self.basis[br])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            local_iters += 1;
            if local_iters > max_iters {
                return Err(LpError::IterationLimit);
            }
        }
    }
}

/// Solve a minimization LP to optimality with the two-phase simplex.
pub fn solve_lp(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    let n = lp.num_vars();
    let rows = lp.all_rows();
    if rows.is_empty() {
        // Unconstrained except x >= 0: optimum at 0 unless some cost is
        // negative (then pushing that variable up is unbounded).
        if lp.objective().iter().any(|&c| c < -TOL) {
            return Err(LpError::Unbounded);
        }
        return Ok(LpSolution {
            x: vec![0.0; n],
            objective: 0.0,
            iterations: 0,
        });
    }
    let m = rows.len();

    // Standardize: rhs >= 0, count extra columns.
    #[derive(Clone, Copy)]
    struct RowPlan {
        flip: bool,
        slack: Option<i8>, // +1 slack (Le), -1 surplus (Ge)
        artificial: bool,
    }
    let mut plans = Vec::with_capacity(m);
    for row in &rows {
        let flip = row.rhs < 0.0;
        let cmp = if flip {
            match row.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            }
        } else {
            row.cmp
        };
        let (slack, artificial) = match cmp {
            Cmp::Le => (Some(1i8), false),
            Cmp::Ge => (Some(-1i8), true),
            Cmp::Eq => (None, true),
        };
        plans.push(RowPlan {
            flip,
            slack,
            artificial,
        });
    }
    let n_slack = plans.iter().filter(|p| p.slack.is_some()).count();
    let n_art = plans.iter().filter(|p| p.artificial).count();
    let art_start = n + n_slack;
    let cols = n + n_slack + n_art;

    // Build the tableau.
    let mut a = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut next_art = art_start;
    for (r, (row, plan)) in rows.iter().zip(&plans).enumerate() {
        let sign = if plan.flip { -1.0 } else { 1.0 };
        for &(v, coef) in &row.terms {
            a[r][v] += sign * coef;
        }
        a[r][cols] = sign * row.rhs;
        if let Some(s) = plan.slack {
            a[r][next_slack] = s as f64;
            if s > 0 {
                basis[r] = next_slack;
            }
            next_slack += 1;
        }
        if plan.artificial {
            a[r][next_art] = 1.0;
            basis[r] = next_art;
            next_art += 1;
        }
        debug_assert!(basis[r] != usize::MAX);
        debug_assert!(a[r][cols] >= 0.0);
    }

    let max_iters = 200 * (m + cols) + 20_000;
    let mut t = Tableau {
        a,
        cost: vec![0.0; cols + 1],
        basis,
        cols,
        art_start,
        iterations: 0,
    };

    // ---- Phase 1: minimize the sum of artificials. ----
    if n_art > 0 {
        for j in art_start..cols {
            t.cost[j] = 1.0;
        }
        // Zero out reduced costs of basic (artificial) columns.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let row = t.a[r].clone();
                for (x, p) in t.cost.iter_mut().zip(row.iter()) {
                    *x -= p;
                }
            }
        }
        t.optimize(true, max_iters)?;
        let phase1_obj = -t.cost[cols];
        if phase1_obj > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining basic artificials out of the basis.
        for r in 0..m {
            if t.basis[r] >= art_start {
                if let Some(col) = (0..art_start).find(|&j| t.a[r][j].abs() > 1e-7) {
                    t.pivot(r, col);
                }
                // Otherwise the row is all-zero over structural and
                // slack columns (redundant constraint) with rhs ≈ 0;
                // leaving the artificial basic at level 0 is harmless
                // as long as it can never re-enter with positive value
                // — phase 2 forbids artificial entering columns and the
                // ratio test keeps basics feasible.
            }
        }
    }

    // ---- Phase 2: minimize the true objective. ----
    t.cost = vec![0.0; cols + 1];
    for (j, &c) in lp.objective().iter().enumerate() {
        t.cost[j] = c;
    }
    for r in 0..m {
        let b = t.basis[r];
        let factor = t.cost[b];
        if factor != 0.0 {
            let row = t.a[r].clone();
            for (x, p) in t.cost.iter_mut().zip(row.iter()) {
                *x -= factor * p;
            }
            t.cost[b] = 0.0;
        }
    }
    t.optimize(false, max_iters)?;

    // Extract the solution.
    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.rhs(r).max(0.0);
        }
    }
    let objective = lp.objective_value(&x);
    Ok(LpSolution {
        x,
        objective,
        iterations: t.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, LinearProgram};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization_as_min() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 → opt (2,6), 36.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-3.0, None);
        let y = lp.add_var(-5.0, None);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[x], 2.0);
        assert_close(s.x[y], 6.0);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y s.t. x + y = 10, x >= 3 → (10 - y) ... opt x=10,y=0? x>=3.
        // min x+2y, x+y=10, x>=3: substitute y=10-x → x + 20 - 2x = 20 - x,
        // minimized by x as large as possible → x=10, y=0, obj 10.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(2.0, None);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 10.0);
        assert_close(s.x[x], 10.0);
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x with x <= 2.5 → x = 2.5.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0, Some(2.5));
        let s = solve_lp(&lp).unwrap();
        assert_close(s.x[x], 2.5);
        assert_close(s.objective, -2.5);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, None);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert!(matches!(solve_lp(&lp), Err(LpError::Infeasible)));
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0, None);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        assert!(matches!(solve_lp(&lp), Err(LpError::Unbounded)));
        // And with no constraints at all.
        let mut lp2 = LinearProgram::new();
        lp2.add_var(-1.0, None);
        assert!(matches!(solve_lp(&lp2), Err(LpError::Unbounded)));
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x s.t. -x <= -4  (i.e. x >= 4).
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, None);
        lp.add_constraint(vec![(x, -1.0)], Cmp::Le, -4.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.x[x], 4.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0, None);
        let y = lp.add_var(-1.0, None);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Le, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, -1.0);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; min x → x=0, y=2.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(0.0, None);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[y], 2.0);
    }

    #[test]
    fn transportation_instance() {
        // 2 plants (cap 20, 30) → 3 customers (dem 10, 25, 15);
        // costs [[8,6,10],[9,12,13]]. Known optimum: 395..? compute:
        // ship plant1: c2 25 ... LP will find it; we just check
        // feasibility + objective against a hand-enumerated optimum.
        let mut lp = LinearProgram::new();
        let costs = [[8.0, 6.0, 10.0], [9.0, 12.0, 13.0]];
        let caps = [20.0, 30.0];
        let dems = [10.0, 25.0, 15.0];
        let mut v = [[0usize; 3]; 2];
        for i in 0..2 {
            for j in 0..3 {
                v[i][j] = lp.add_var(costs[i][j], None);
            }
        }
        for i in 0..2 {
            lp.add_constraint((0..3).map(|j| (v[i][j], 1.0)).collect(), Cmp::Le, caps[i]);
        }
        for j in 0..3 {
            lp.add_constraint((0..2).map(|i| (v[i][j], 1.0)).collect(), Cmp::Ge, dems[j]);
        }
        let s = solve_lp(&lp).unwrap();
        assert!(lp.max_violation(&s.x) < 1e-6);
        // Optimal: plant1 serves cust2 (25·6 would exceed cap with
        // others) — verify against brute force over integer grids is
        // overkill; the LP optimum is 440:
        //   x12=20 (120), x21=10 (90), x22=5 (60), x23=15 (195) → 465?
        // Instead of hand-solving, check duality-free necessary
        // conditions: objective must be <= any feasible candidate.
        let candidate_obj = 6.0 * 20.0 + 9.0 * 10.0 + 12.0 * 5.0 + 13.0 * 15.0;
        assert!(s.objective <= candidate_obj + 1e-9);
        assert!(s.objective >= 300.0);
    }

    #[test]
    fn zero_rhs_equality() {
        // min x + y s.t. x - y = 0, x + y >= 2 → x=y=1.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(1.0, None);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.x[x], 1.0);
        assert_close(s.x[y], 1.0);
    }
}
