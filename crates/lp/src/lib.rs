//! A from-scratch generic linear-programming solver.
//!
//! This crate is the workspace's stand-in for the commercial solver
//! (CPLEX) the paper benchmarks against in Table III and Section V-C:
//! a correct, general-purpose, *non-decomposed* LP code. It
//! deliberately implements the classical dense two-phase tableau
//! simplex — robust and exact on small instances — so that:
//!
//! 1. the EPF decomposition solver in `vod-core` can be validated
//!    against exact optima on small placement instances, and
//! 2. the Table III scalability comparison can demonstrate the same
//!    *shape* the paper reports: superlinear time and a dense-matrix
//!    memory footprint for the generic code versus near-linear
//!    behaviour for the decomposition.
//!
//! A simple depth-first branch-and-bound wrapper
//! ([`branch_bound::solve_mip`]) provides exact mixed-integer optima
//! on tiny instances, used to validate the rounding heuristic.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod branch_bound;
pub mod problem;
pub mod simplex;

pub use branch_bound::{solve_mip, MipOutcome};
pub use problem::{Cmp, LinearProgram, LpError, LpSolution};
pub use simplex::solve_lp;
