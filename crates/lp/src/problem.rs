//! Problem data structures for the generic LP solver.

use std::fmt;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Le,
    Ge,
    Eq,
}

/// One sparse constraint row: `Σ coef·x[var] (cmp) rhs`.
#[derive(Debug, Clone)]
pub struct Row {
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A minimization LP over variables `x_0..x_{n-1}` with `x >= 0` and
/// optional finite upper bounds (encoded internally as extra rows).
///
/// This mirrors the modeling surface a generic solver exposes: you
/// enumerate every variable and every constraint explicitly, which for
/// the placement LP means `|M|·(|V|² + |V|)` variables — exactly the
/// blow-up that makes the non-decomposed approach collapse in Table III.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    objective: Vec<f64>,
    upper_bounds: Vec<Option<f64>>,
    rows: Vec<Row>,
}

impl LinearProgram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with objective coefficient `cost` and optional
    /// upper bound; returns its index. All variables are `>= 0`.
    pub fn add_var(&mut self, cost: f64, upper_bound: Option<f64>) -> usize {
        assert!(cost.is_finite(), "objective coefficient must be finite");
        if let Some(ub) = upper_bound {
            assert!(ub >= 0.0 && ub.is_finite(), "invalid upper bound {ub}");
        }
        self.objective.push(cost);
        self.upper_bounds.push(upper_bound);
        self.objective.len() - 1
    }

    /// Add a sparse constraint. Terms with out-of-range variables or
    /// non-finite coefficients are rejected.
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(v, c) in &terms {
            assert!(v < self.objective.len(), "variable {v} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.rows.push(Row { terms, cmp, rhs });
    }

    #[inline]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    #[inline]
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    #[inline]
    pub fn upper_bound(&self, var: usize) -> Option<f64> {
        self.upper_bounds[var]
    }

    /// All rows including the materialized `x <= ub` bound rows, in a
    /// form ready for standardization.
    pub(crate) fn all_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        for (v, ub) in self.upper_bounds.iter().enumerate() {
            if let Some(ub) = ub {
                rows.push(Row {
                    terms: vec![(v, 1.0)],
                    cmp: Cmp::Le,
                    rhs: *ub,
                });
            }
        }
        rows
    }

    /// Evaluate the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Maximum constraint violation of `x` (0 when feasible), including
    /// bounds and nonnegativity.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for (v, ub) in self.upper_bounds.iter().enumerate() {
            worst = worst.max(-x[v]);
            if let Some(ub) = ub {
                worst = worst.max(x[v] - ub);
            }
        }
        for row in &self.rows {
            let lhs: f64 = row.terms.iter().map(|&(v, c)| c * x[v]).sum();
            let viol = match row.cmp {
                Cmp::Le => lhs - row.rhs,
                Cmp::Ge => row.rhs - lhs,
                Cmp::Eq => (lhs - row.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }

    /// Approximate memory footprint of the dense simplex tableau this
    /// LP would require, in bytes. Reported by the Table III
    /// experiment: the generic approach materializes an
    /// `(m+1) × (n + slacks + artificials + 1)` dense matrix.
    pub fn tableau_bytes(&self) -> usize {
        let m = self.all_rows().len();
        let n = self.num_vars();
        // Worst case: one slack/surplus plus one artificial per row.
        let cols = n + 2 * m + 1;
        (m + 1) * cols * std::mem::size_of::<f64>()
    }
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    Infeasible,
    Unbounded,
    /// Iteration limit hit — returned rather than looping forever on
    /// pathological inputs.
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    pub x: Vec<f64>,
    pub objective: f64,
    pub iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut lp = LinearProgram::new();
        let a = lp.add_var(1.0, None);
        let b = lp.add_var(2.0, Some(5.0));
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 3.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.objective_value(&[1.0, 2.0]), 5.0);
        // Bound row materialized.
        assert_eq!(lp.all_rows().len(), 2);
    }

    #[test]
    fn violation_measures() {
        let mut lp = LinearProgram::new();
        let a = lp.add_var(1.0, Some(1.0));
        lp.add_constraint(vec![(a, 2.0)], Cmp::Le, 1.0);
        assert_eq!(lp.max_violation(&[0.5]), 0.0);
        assert!((lp.max_violation(&[1.5]) - 2.0).abs() < 1e-12); // 2*1.5-1=2
        assert_eq!(lp.max_violation(&[-1.0]), 1.0); // nonnegativity
    }

    #[test]
    fn tableau_bytes_grows_with_size() {
        let mut small = LinearProgram::new();
        let v = small.add_var(1.0, None);
        small.add_constraint(vec![(v, 1.0)], Cmp::Le, 1.0);
        let mut big = LinearProgram::new();
        for _ in 0..100 {
            let v = big.add_var(1.0, None);
            big.add_constraint(vec![(v, 1.0)], Cmp::Le, 1.0);
        }
        assert!(big.tableau_bytes() > 100 * small.tableau_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_variable() {
        let mut lp = LinearProgram::new();
        lp.add_constraint(vec![(0, 1.0)], Cmp::Le, 1.0);
    }
}
