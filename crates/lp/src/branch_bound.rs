//! Exact branch-and-bound over the simplex, for tiny mixed-integer
//! programs.
//!
//! Used to obtain *exact* MIP optima on miniature placement instances,
//! against which the EPF + rounding pipeline's optimality gap is
//! validated (the paper reports 1–4 % gaps, Section V-D). Depth-first
//! search branching on the most fractional integer variable, pruning by
//! the LP relaxation bound.

use crate::problem::{Cmp, LinearProgram, LpError, LpSolution};
use crate::simplex::solve_lp;

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct MipOutcome {
    pub solution: LpSolution,
    /// Nodes explored.
    pub nodes: usize,
    /// False if the node limit was hit before the tree was exhausted
    /// (the returned incumbent may then be suboptimal).
    pub proven_optimal: bool,
}

const INT_TOL: f64 = 1e-6;

/// Solve `lp` requiring `integer_vars` to take integer values.
///
/// `node_limit` bounds the search; if it is exhausted the best
/// incumbent found so far is returned with `proven_optimal = false`,
/// or `Err(IterationLimit)` if none was found.
pub fn solve_mip(
    lp: &LinearProgram,
    integer_vars: &[usize],
    node_limit: usize,
) -> Result<MipOutcome, LpError> {
    // A node is a set of branching bounds: (var, is_upper, value).
    type Branches = Vec<(usize, bool, f64)>;
    let mut stack: Vec<Branches> = vec![Vec::new()];
    let mut incumbent: Option<LpSolution> = None;
    let mut nodes = 0usize;
    let mut exhausted = true;

    while let Some(branches) = stack.pop() {
        if nodes >= node_limit {
            exhausted = false;
            break;
        }
        nodes += 1;
        let mut node_lp = lp.clone();
        for &(v, is_upper, val) in &branches {
            if is_upper {
                node_lp.add_constraint(vec![(v, 1.0)], Cmp::Le, val);
            } else {
                node_lp.add_constraint(vec![(v, 1.0)], Cmp::Ge, val);
            }
        }
        let relax = match solve_lp(&node_lp) {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        if let Some(best) = &incumbent {
            if relax.objective >= best.objective - 1e-9 {
                continue; // bound prune
            }
        }
        // Most fractional integer variable.
        let frac = integer_vars
            .iter()
            .map(|&v| (v, (relax.x[v] - relax.x[v].round()).abs()))
            .filter(|&(_, f)| f > INT_TOL)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match frac {
            None => {
                // Integral: new incumbent (round off numerical fuzz).
                let mut sol = relax;
                for &v in integer_vars {
                    sol.x[v] = sol.x[v].round();
                }
                sol.objective = lp.objective_value(&sol.x);
                if incumbent
                    .as_ref()
                    .is_none_or(|b| sol.objective < b.objective)
                {
                    incumbent = Some(sol);
                }
            }
            Some((v, _)) => {
                let val = relax.x[v];
                let mut down = branches.clone();
                down.push((v, true, val.floor()));
                let mut up = branches;
                up.push((v, false, val.ceil()));
                // DFS: explore the "up" branch first (placement MIPs
                // tend to need y = 1 for popular videos).
                stack.push(down);
                stack.push(up);
            }
        }
    }

    match incumbent {
        Some(solution) => Ok(MipOutcome {
            solution,
            nodes,
            proven_optimal: exhausted,
        }),
        None if exhausted => Err(LpError::Infeasible),
        None => Err(LpError::IterationLimit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, LinearProgram};

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary.
        // Best: a + c (wt 5, val 17) vs b + c (wt 6, val 20) → 20.
        let mut lp = LinearProgram::new();
        let a = lp.add_var(-10.0, Some(1.0));
        let b = lp.add_var(-13.0, Some(1.0));
        let c = lp.add_var(-7.0, Some(1.0));
        lp.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let out = solve_mip(&lp, &[a, b, c], 1000).unwrap();
        assert!(out.proven_optimal);
        assert!((out.solution.objective + 20.0).abs() < 1e-6);
        assert_eq!(out.solution.x[a].round() as i32, 0);
        assert_eq!(out.solution.x[b].round() as i32, 1);
        assert_eq!(out.solution.x[c].round() as i32, 1);
    }

    #[test]
    fn integrality_gap_instance() {
        // min y1 + y2 s.t. y1 + y2 >= 1.5 → LP 1.5, MIP 2 (e.g. 1+1).
        let mut lp = LinearProgram::new();
        let y1 = lp.add_var(1.0, Some(1.0));
        let y2 = lp.add_var(1.0, Some(1.0));
        lp.add_constraint(vec![(y1, 1.0), (y2, 1.0)], Cmp::Ge, 1.5);
        let relax = crate::simplex::solve_lp(&lp).unwrap();
        assert!((relax.objective - 1.5).abs() < 1e-6);
        let out = solve_mip(&lp, &[y1, y2], 100).unwrap();
        assert!((out.solution.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        // 2y = 1 with y integer in [0, 1] is infeasible.
        let mut lp = LinearProgram::new();
        let y = lp.add_var(1.0, Some(1.0));
        lp.add_constraint(vec![(y, 2.0)], Cmp::Eq, 1.0);
        assert!(matches!(
            solve_mip(&lp, &[y], 100),
            Err(LpError::Infeasible)
        ));
    }

    #[test]
    fn mixed_integer_keeps_continuous_fractional() {
        // min -x - y, x <= 1.5 (continuous), y <= 1.5 (integer),
        // x + y <= 2.6 → y = 1, x = 1.5.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0, Some(1.5));
        let y = lp.add_var(-1.0, Some(1.5));
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 2.6);
        let out = solve_mip(&lp, &[y], 100).unwrap();
        assert!((out.solution.x[x] - 1.5).abs() < 1e-6);
        assert!((out.solution.x[y] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn facility_location_miniature() {
        // 2 facilities, 2 clients. Opening costs 5 and 100; service
        // costs f1: [1, 1], f2: [0, 0]. With binaries, opening only
        // f1 (cost 5 + 2) beats opening f2 (100) or both.
        let mut lp = LinearProgram::new();
        let y1 = lp.add_var(5.0, Some(1.0));
        let y2 = lp.add_var(100.0, Some(1.0));
        let mut x = [[0usize; 2]; 2];
        let service = [[1.0, 1.0], [0.0, 0.0]];
        for i in 0..2 {
            for j in 0..2 {
                x[i][j] = lp.add_var(service[i][j], None);
            }
        }
        for (&xa, &xb) in x[0].iter().zip(&x[1]) {
            lp.add_constraint(vec![(xa, 1.0), (xb, 1.0)], Cmp::Eq, 1.0);
        }
        let ys = [y1, y2];
        for (xi, &yi) in x.iter().zip(&ys) {
            for &xij in xi {
                lp.add_constraint(vec![(xij, 1.0), (yi, -1.0)], Cmp::Le, 0.0);
            }
        }
        let out = solve_mip(&lp, &[y1, y2], 1000).unwrap();
        assert!((out.solution.objective - 7.0).abs() < 1e-6);
        assert!((out.solution.x[y1] - 1.0).abs() < 1e-6);
        assert!(out.solution.x[y2].abs() < 1e-6);
    }

    #[test]
    fn node_limit_behaviour() {
        let mut lp = LinearProgram::new();
        let vars: Vec<usize> = (0..6).map(|_| lp.add_var(-1.0, Some(1.0))).collect();
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Le, 2.5);
        // Generous limit: proven optimum of -2 (two variables at 1).
        let full = solve_mip(&lp, &vars, 5000).unwrap();
        assert!(full.proven_optimal);
        assert!((full.solution.objective + 2.0).abs() < 1e-6);
        // Tiny limit: either no incumbent yet (IterationLimit) or an
        // unproven feasible incumbent — never a wrong "proven" claim.
        match solve_mip(&lp, &vars, 3) {
            Ok(out) => {
                assert!(!out.proven_optimal);
                assert!(lp.max_violation(&out.solution.x) < 1e-6);
            }
            Err(e) => assert!(matches!(e, LpError::IterationLimit)),
        }
    }
}
