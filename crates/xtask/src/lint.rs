//! The rule engine behind `cargo xtask lint`.
//!
//! Eight repo-specific source lints — four aimed at the property the
//! paper's evaluation depends on (**byte-identical placements from
//! identical seeds**), two guarding the solver's and simulator's
//! allocation-free hot paths, one keeping those hot paths free of
//! process-killing panics (graceful degradation is a deliverable of
//! the fault-injection layer), and one routing every durable
//! snapshot/results write through the atomic temp-file-plus-rename
//! helper so a crash can never leave a torn artifact behind.
//! The rules are textual (line-oriented with comment stripping and
//! `#[cfg(test)]`-module tracking) rather than AST-based —
//! deliberately so: they run in milliseconds with zero dependencies,
//! and every construct they police is easy to name syntactically.
//!
//! | rule | forbids | where |
//! |------|---------|-------|
//! | `nondeterministic-map` | `std::collections::HashMap`/`HashSet` | `vod-core`, `vod-sim`, `vod-trace` library code |
//! | `nan-unwrap-cmp` | `partial_cmp` (incl. `.unwrap()` comparators) | whole workspace |
//! | `wall-clock` | `Instant::now` / `SystemTime` | outside `crates/bench` |
//! | `raw-index` | `VhoId::new` / `VhoId::from_index` | outside `crates/model`, `crates/net` library code |
//! | `vec-vec-f64` | `Vec<Vec<f64>>` | `vod-core` solver + `vod-sim` simulator hot-path modules |
//! | `dyn-dispatch` | `Box<dyn` | `vod-sim` simulator hot-path modules |
//! | `no-panic-hot-path` | `panic!` / `unreachable!` / `todo!` / `.unwrap()` / `.expect(` | modules reachable from `simulate` / `solve_placement` |
//! | `snapshot-io` | `fs::write(` / `File::create(` | `vod-json`, `vod-ops`, `vod-bench` library + bin code (durable artifact writers) |
//!
//! Escape hatch: a comment line
//! `// lint:allow(<rule>): <justification>` suppresses the rule on the
//! next code line (or the same line). The justification is mandatory —
//! an empty one is itself a finding.

use std::fmt;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

pub const RULES: [&str; 8] = [
    "nondeterministic-map",
    "nan-unwrap-cmp",
    "wall-clock",
    "raw-index",
    "vec-vec-f64",
    "dyn-dispatch",
    "no-panic-hot-path",
    "snapshot-io",
];

/// Paths (workspace-relative, `/`-separated) the linter never scans:
/// vendored shims emulate third-party crates, and the linter itself
/// spells the forbidden patterns in its rule table.
fn exempt_path(path: &str) -> bool {
    path.starts_with("crates/shims/")
        || path.starts_with("crates/xtask/")
        || path.starts_with("target/")
}

/// Crates whose *library* code must use deterministic containers.
fn deterministic_container_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/")
        || path.starts_with("crates/sim/src/")
        || path.starts_with("crates/trace/src/")
}

/// Crates allowed to read wall-clock time freely (experiment timing).
fn wall_clock_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/")
}

/// Crates allowed to construct `VhoId`s from raw integers: the id
/// newtypes live in `vod-model`, and `vod-net` builds topologies.
fn raw_index_exempt(path: &str) -> bool {
    path.starts_with("crates/model/") || path.starts_with("crates/net/")
}

/// Crates that write durable artifacts (state snapshots, solver
/// checkpoints, `results/*.json`): every write must go through
/// `vod_json::snapshot::write_atomic` (or the snapshot helpers built
/// on it) so an interrupted process leaves either the old complete
/// file or the new one, never a torn half-write the recovery path then
/// has to treat as corruption.
fn snapshot_io_scope(path: &str) -> bool {
    path.starts_with("crates/json/src/")
        || path.starts_with("crates/ops/src/")
        || path.starts_with("crates/bench/src/")
}

/// Whether a path is test-only code (integration tests, benches).
fn test_only_file(path: &str) -> bool {
    path.contains("/tests/") || path.starts_with("tests/") || path.contains("/benches/")
}

/// Solver hot-path modules where nested `Vec<Vec<f64>>` matrices are
/// forbidden (flat row-major buffers only — see `crates/core/src/penalty.rs`
/// and DESIGN.md "Solver performance architecture"). `direct.rs` is
/// excluded: the simplex baseline is deliberately not a hot path.
fn flat_buffer_scope(path: &str) -> bool {
    const HOT: [&str; 7] = [
        "block.rs",
        "epf.rs",
        "penalty.rs",
        "pool.rs",
        "potential.rs",
        "rounding.rs",
        "solution.rs",
    ];
    path.strip_prefix("crates/core/src/")
        .is_some_and(|f| HOT.contains(&f))
        || sim_hot_path_scope(path)
}

/// Simulator hot-path modules where heap-boxed trait objects (and
/// nested matrices) are forbidden: the per-event loop must stay
/// monomorphized and allocation-free (see the `CacheImpl` enum in
/// `crates/sim/src/cache.rs` and DESIGN.md "Simulator performance
/// architecture").
fn sim_hot_path_scope(path: &str) -> bool {
    const HOT: [&str; 4] = ["batch.rs", "cache.rs", "engine.rs", "faults.rs"];
    path.strip_prefix("crates/sim/src/")
        .is_some_and(|f| HOT.contains(&f))
}

/// Modules reachable from `vod_sim::simulate` or
/// `vod_core::solve_placement` at run time: the fault-injection layer
/// promises graceful degradation (typed errors, denial accounting,
/// best-incumbent returns), so nothing on those paths may tear the
/// process down. Entry-guard `assert!`s on caller-supplied shapes are
/// deliberately NOT policed — they fire before any work starts.
fn no_panic_scope(path: &str) -> bool {
    flat_buffer_scope(path)
        || path == "crates/core/src/solver.rs"
        || path == "crates/net/src/routing.rs"
        || path.starts_with("crates/trace/src/")
}

/// Strip `//` line comments and (statefully) `/* ... */` block
/// comments. Returns the code portion of the line and whether the line
/// is entirely comment/blank. The string-literal-aware case (`"//"`
/// inside a string) is intentionally not handled: a stripped suffix
/// can only hide a finding on the same line as a string URL, never
/// invent one.
struct CommentStripper {
    in_block: bool,
}

impl CommentStripper {
    fn new() -> Self {
        Self { in_block: false }
    }

    fn strip(&mut self, line: &str) -> String {
        let mut out = String::with_capacity(line.len());
        let mut rest = line;
        loop {
            if self.in_block {
                match rest.find("*/") {
                    Some(i) => {
                        self.in_block = false;
                        rest = &rest[i + 2..];
                    }
                    None => return out,
                }
            } else {
                let line_c = rest.find("//");
                let block_c = rest.find("/*");
                if let Some(l) = line_c.filter(|&l| block_c.is_none_or(|b| l < b)) {
                    out.push_str(&rest[..l]);
                    return out;
                } else if let Some(b) = block_c {
                    out.push_str(&rest[..b]);
                    self.in_block = true;
                    rest = &rest[b + 2..];
                } else {
                    out.push_str(rest);
                    return out;
                }
            }
        }
    }
}

/// Parse `lint:allow(<rule>): <justification>` out of a line, if
/// present. Returns `Err` (as a finding message) when the annotation is
/// malformed or lacks a justification.
fn parse_allow(line: &str) -> Option<Result<&'static str, String>> {
    let start = line.find("lint:allow(")?;
    let rest = &line[start + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed lint:allow(...)".to_string()));
    };
    let rule_name = &rest[..close];
    let Some(rule) = RULES.iter().find(|r| **r == rule_name) else {
        return Some(Err(format!(
            "unknown lint rule {rule_name:?} (known: {})",
            RULES.join(", ")
        )));
    };
    let after = rest[close + 1..].trim_start();
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Some(Err(format!(
            "lint:allow({rule_name}) requires a justification: `// lint:allow({rule_name}): <why>`"
        )));
    }
    Some(Ok(rule))
}

/// Lint one file's contents. `path` must be workspace-relative with
/// `/` separators.
pub fn lint_file(path: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if exempt_path(path) || !path.ends_with(".rs") {
        return findings;
    }
    let test_file = test_only_file(path);

    let mut stripper = CommentStripper::new();
    // Brace depth inside `#[cfg(test)] mod` blocks; 0 = library code.
    let mut cfg_test_pending = false;
    let mut test_mod_depth: i64 = 0;
    let mut in_test_mod = false;
    // Rules suppressed for the next code line.
    let mut pending_allows: Vec<&'static str> = Vec::new();

    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        let code = stripper.strip(raw);
        let code = code.trim();

        // The annotation lives in a comment, so parse the raw line.
        if let Some(allow) = parse_allow(raw) {
            match allow {
                Ok(rule) => pending_allows.push(rule),
                Err(msg) => findings.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule: "lint-allow",
                    message: msg,
                }),
            }
        }
        if code.is_empty() {
            continue; // comment or blank line: allows stay pending
        }

        // Track `#[cfg(test)] mod … { … }` regions.
        if code.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        } else if cfg_test_pending && !in_test_mod {
            if code.starts_with("mod ") || code.starts_with("pub mod ") {
                in_test_mod = true;
                test_mod_depth = 0;
            } else if !code.starts_with("#[") {
                // Attribute applied to something other than a module
                // (a test fn outside a tests mod): treat conservatively
                // as library code, but stop waiting for a module.
                cfg_test_pending = false;
            }
        }
        if in_test_mod {
            test_mod_depth += code.matches('{').count() as i64;
            test_mod_depth -= code.matches('}').count() as i64;
            if test_mod_depth <= 0 {
                in_test_mod = false;
                cfg_test_pending = false;
            }
        }
        let in_test_code = test_file || in_test_mod;

        let mut check = |rule: &'static str, hit: bool, message: String| {
            if hit && !pending_allows.contains(&rule) {
                findings.push(Finding {
                    file: path.to_string(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };

        if deterministic_container_scope(path) && !in_test_code {
            check(
                "nondeterministic-map",
                code.contains("HashMap") || code.contains("HashSet"),
                "std hash containers iterate in randomized order; use BTreeMap/BTreeSet \
                 or a sorted Vec so placements are byte-identical across runs"
                    .to_string(),
            );
        }
        check(
            "nan-unwrap-cmp",
            code.contains("partial_cmp"),
            "partial_cmp panics (or silently mis-sorts) on NaN; use f64::total_cmp or \
             vod_model::fcmp"
                .to_string(),
        );
        if !wall_clock_exempt(path) {
            check(
                "wall-clock",
                code.contains("Instant::now") || code.contains("SystemTime"),
                "wall-clock reads outside crates/bench break reproducibility; annotate \
                 solver timing with lint:allow(wall-clock)"
                    .to_string(),
            );
        }
        if !raw_index_exempt(path) && !in_test_code {
            check(
                "raw-index",
                code.contains("VhoId::new(") || code.contains("VhoId::from_index"),
                "raw VhoId construction outside crates/model and crates/net bypasses the \
                 id-newtype boundary; take ids from the Network or annotate the dense-\
                 vector indexing"
                    .to_string(),
            );
        }
        if flat_buffer_scope(path) && !in_test_code {
            check(
                "vec-vec-f64",
                code.contains("Vec<Vec<f64>>"),
                "nested f64 matrices in solver hot paths re-allocate per chunk; use a \
                 flat row-major buffer (crate::penalty::PenaltyArena, UflProblem) or \
                 annotate a boundary constructor"
                    .to_string(),
            );
        }
        if no_panic_scope(path) && !in_test_code {
            check(
                "no-panic-hot-path",
                code.contains("panic!(")
                    || code.contains("unreachable!(")
                    || code.contains("todo!(")
                    || code.contains(".unwrap()")
                    || code.contains(".expect("),
                "panics and unwraps reachable from simulate/solve kill the whole run; \
                 degrade instead (typed SolveError, denial accounting, let-else \
                 fallbacks) or justify an unreachable invariant with \
                 lint:allow(no-panic-hot-path)"
                    .to_string(),
            );
        }
        if snapshot_io_scope(path) && !in_test_code {
            check(
                "snapshot-io",
                code.contains("fs::write(") || code.contains("File::create("),
                "direct file writes in snapshot/results paths can be torn by a crash; \
                 route through vod_json::snapshot::write_atomic (or the snapshot \
                 helpers) so readers only ever see complete files"
                    .to_string(),
            );
        }
        if sim_hot_path_scope(path) && !in_test_code {
            check(
                "dyn-dispatch",
                code.contains("Box<dyn"),
                "boxed trait objects in the simulator hot path cost a heap indirection \
                 and an uninlinable virtual call per event; dispatch through the \
                 CacheImpl enum (crates/sim/src/cache.rs) instead"
                    .to_string(),
            );
        }

        pending_allows.clear();
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_hash_map_in_core_lib_code() {
        let f = lint_file(
            "crates/core/src/foo.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); }\n",
        );
        assert_eq!(
            rules_of(&f),
            ["nondeterministic-map", "nondeterministic-map"]
        );
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn hash_map_fine_outside_scope_and_in_tests() {
        assert!(lint_file("crates/lp/src/foo.rs", "use std::collections::HashMap;\n").is_empty());
        let in_tests =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(lint_file("crates/core/src/foo.rs", in_tests).is_empty());
    }

    #[test]
    fn code_after_test_mod_is_library_code_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nuse std::collections::HashSet;\n";
        let f = lint_file("crates/sim/src/foo.rs", src);
        assert_eq!(rules_of(&f), ["nondeterministic-map"]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn flags_partial_cmp_everywhere_even_in_tests() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        for path in [
            "crates/model/src/x.rs",
            "crates/bench/src/bin/x.rs",
            "tests/x.rs",
        ] {
            assert_eq!(
                rules_of(&lint_file(path, src)),
                ["nan-unwrap-cmp"],
                "{path}"
            );
        }
    }

    #[test]
    fn partial_cmp_in_doc_comment_is_fine() {
        let src = "//! `partial_cmp(...).unwrap()` is forbidden.\n/// partial_cmp\nfn f() {}\n";
        assert!(lint_file("crates/model/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_wall_clock_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/x.rs", src)),
            ["wall-clock"]
        );
        assert!(lint_file("crates/bench/src/bin/x.rs", src).is_empty());
        let sys = "fn f() { let t = std::time::SystemTime::now(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/trace/src/x.rs", sys)),
            ["wall-clock"]
        );
    }

    #[test]
    fn flags_raw_vho_ids_outside_model_and_net() {
        let src = "fn f() {\n    let v = VhoId::new(0);\n    let w = VhoId::from_index(3);\n}\n";
        let f = lint_file("crates/sim/src/x.rs", src);
        assert_eq!(rules_of(&f), ["raw-index", "raw-index"]);
        assert_eq!((f[0].line, f[1].line), (2, 3));
        assert!(lint_file("crates/model/src/x.rs", src).is_empty());
        assert!(lint_file("crates/net/src/x.rs", src).is_empty());
        // Test code may construct ids freely.
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/sim/src/x.rs", &in_tests).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_next_code_line() {
        let src = "// lint:allow(wall-clock): solver timing is reporting-only\n\
                   // and never feeds back into the optimization.\n\
                   let t = Instant::now();\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_annotation_applies_to_same_line() {
        let src = "let t = Instant::now(); // lint:allow(wall-clock): progress display only\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_is_consumed_by_one_code_line() {
        let src = "// lint:allow(wall-clock): first read only\n\
                   let t = Instant::now();\n\
                   let u = Instant::now();\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["wall-clock"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let src = "// lint:allow(wall-clock)\nlet t = Instant::now();\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["lint-allow", "wall-clock"]);
    }

    #[test]
    fn allow_of_unknown_rule_is_a_finding() {
        let src = "// lint:allow(no-such-rule): whatever\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["lint-allow"]);
        assert!(f[0].message.contains("unknown lint rule"));
    }

    #[test]
    fn flags_nested_f64_matrices_in_hot_paths() {
        let src = "fn f() { let m: Vec<Vec<f64>> = Vec::new(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/epf.rs", src)),
            ["vec-vec-f64"]
        );
        // Outside the hot-path module list the rule is silent.
        assert!(lint_file("crates/core/src/direct.rs", src).is_empty());
        assert!(lint_file("crates/lp/src/lib.rs", src).is_empty());
        // Test modules may build nested reference matrices freely.
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/core/src/penalty.rs", &in_tests).is_empty());
        // A justified allow covers a boundary constructor.
        let allowed = "// lint:allow(vec-vec-f64): boundary constructor flattens rows\n\
                       pub fn from_rows(rows: Vec<Vec<f64>>) {}\n";
        assert!(lint_file("crates/core/src/block.rs", allowed).is_empty());
    }

    #[test]
    fn flags_nested_f64_matrices_in_sim_hot_paths() {
        let src = "fn f() { let m: Vec<Vec<f64>> = Vec::new(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/sim/src/engine.rs", src)),
            ["vec-vec-f64"]
        );
        // Non-hot-path sim modules are out of scope.
        assert!(lint_file("crates/sim/src/configs.rs", src).is_empty());
    }

    #[test]
    fn flags_boxed_trait_objects_in_sim_hot_paths() {
        let src = "fn f() { let c: Box<dyn Cache + Send> = make(); }\n";
        for path in [
            "crates/sim/src/engine.rs",
            "crates/sim/src/cache.rs",
            "crates/sim/src/batch.rs",
        ] {
            assert_eq!(rules_of(&lint_file(path, src)), ["dyn-dispatch"], "{path}");
        }
        // Out of scope: other crates, non-hot sim modules, test code.
        assert!(lint_file("crates/core/src/epf.rs", src).is_empty());
        assert!(lint_file("crates/sim/src/configs.rs", src).is_empty());
        assert!(lint_file("crates/sim/tests/x.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/sim/src/cache.rs", &in_tests).is_empty());
        // A justified allow still works.
        let allowed = "// lint:allow(dyn-dispatch): plugin boundary, cold path\n\
                       fn g() -> Box<dyn Cache> { make() }\n";
        assert!(lint_file("crates/sim/src/engine.rs", allowed).is_empty());
    }

    #[test]
    fn flags_panics_in_hot_paths() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    let x = v.unwrap();\n    \
                   let y = v.expect(\"set\");\n    panic!(\"boom\");\n}\n";
        for path in [
            "crates/sim/src/engine.rs",
            "crates/sim/src/faults.rs",
            "crates/core/src/epf.rs",
            "crates/core/src/solver.rs",
            "crates/net/src/routing.rs",
            "crates/trace/src/stats.rs",
        ] {
            assert_eq!(
                rules_of(&lint_file(path, src)),
                ["no-panic-hot-path"; 3],
                "{path}"
            );
        }
        // Cold paths, test files, and test modules are out of scope.
        assert!(lint_file("crates/core/src/direct.rs", src).is_empty());
        assert!(lint_file("crates/sim/tests/x.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/sim/src/engine.rs", &in_tests).is_empty());
    }

    #[test]
    fn asserts_and_fallible_cousins_are_not_panics() {
        // Entry-guard asserts and the _or/_err/_else family are fine.
        let src = "fn f(v: Option<u32>) -> u32 {\n    assert!(true);\n    \
                   assert_eq!(1, 1);\n    debug_assert!(true);\n    \
                   v.unwrap_or(0)\n}\n";
        assert!(lint_file("crates/sim/src/engine.rs", src).is_empty());
        let justified =
            "// lint:allow(no-panic-hot-path): index proven in-bounds by construction\n\
             let x = v.unwrap();\n";
        assert!(lint_file("crates/core/src/pool.rs", justified).is_empty());
    }

    #[test]
    fn shims_and_xtask_are_exempt() {
        let src = "fn f() { let t = Instant::now(); let m = HashMap::new(); }\n";
        assert!(lint_file("crates/shims/criterion/src/lib.rs", src).is_empty());
        assert!(lint_file("crates/xtask/src/lint.rs", src).is_empty());
    }

    #[test]
    fn block_comments_are_stripped_across_lines() {
        let src = "/*\n let t = Instant::now();\n*/\nfn f() {}\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_direct_writes_in_snapshot_crates() {
        let src = "fn f() {\n    std::fs::write(&path, bytes)?;\n    \
                   let f = std::fs::File::create(&path)?;\n}\n";
        for path in [
            "crates/json/src/snapshot.rs",
            "crates/ops/src/pipeline.rs",
            "crates/bench/src/lib.rs",
            "crates/bench/src/bin/ops_pipeline.rs",
        ] {
            let f = lint_file(path, src);
            assert_eq!(rules_of(&f), ["snapshot-io", "snapshot-io"], "{path}");
        }
    }

    #[test]
    fn direct_writes_fine_outside_snapshot_scope_and_in_tests() {
        let src = "fn f() { std::fs::write(&path, bytes).ok(); }\n";
        // Crates that never write durable artifacts are out of scope.
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
        assert!(lint_file("crates/trace/src/x.rs", src).is_empty());
        // Tests corrupt files on purpose.
        assert!(lint_file("crates/ops/tests/pipeline.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/json/src/snapshot.rs", &in_tests).is_empty());
    }

    #[test]
    fn annotated_atomic_helper_is_allowed() {
        let src = "// lint:allow(snapshot-io): this IS the atomic write helper\n\
                   std::fs::write(&tmp, bytes)?;\n";
        assert!(lint_file("crates/json/src/snapshot.rs", src).is_empty());
    }
}
