//! Textual lint rules for `cargo xtask lint` — thin façade.
//!
//! The rule engine itself lives in [`vod_analyze::textual`], re-hosted
//! on the shared span-preserving lexer (`vod_analyze::lexer`): rules
//! match against a *code view* with string/char literals and comments
//! blanked out, so a forbidden pattern inside a string literal or a
//! nested block comment can no longer produce a false positive, and
//! per-line comment stripping is gone. The rule table, path scopes,
//! and `lint:allow` grammar are documented there and in DESIGN.md §8.
//!
//! This module only re-exports the API and pins the engine's observable
//! behavior with the test suite below — the same suite that guarded the
//! original line-oriented implementation, plus cases that only a
//! token-level engine can pass.

pub use vod_analyze::textual::lint_file;
#[cfg(test)]
use vod_analyze::textual::Finding;

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_hash_map_in_core_lib_code() {
        let f = lint_file(
            "crates/core/src/foo.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); }\n",
        );
        assert_eq!(
            rules_of(&f),
            ["nondeterministic-map", "nondeterministic-map"]
        );
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn hash_map_fine_outside_scope_and_in_tests() {
        assert!(lint_file("crates/lp/src/foo.rs", "use std::collections::HashMap;\n").is_empty());
        let in_tests =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(lint_file("crates/core/src/foo.rs", in_tests).is_empty());
    }

    #[test]
    fn code_after_test_mod_is_library_code_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nuse std::collections::HashSet;\n";
        let f = lint_file("crates/sim/src/foo.rs", src);
        assert_eq!(rules_of(&f), ["nondeterministic-map"]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn flags_partial_cmp_everywhere_even_in_tests() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        for path in [
            "crates/model/src/x.rs",
            "crates/bench/src/bin/x.rs",
            "tests/x.rs",
        ] {
            assert_eq!(
                rules_of(&lint_file(path, src)),
                ["nan-unwrap-cmp"],
                "{path}"
            );
        }
    }

    #[test]
    fn partial_cmp_in_doc_comment_is_fine() {
        let src = "//! `partial_cmp(...).unwrap()` is forbidden.\n/// partial_cmp\nfn f() {}\n";
        assert!(lint_file("crates/model/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_wall_clock_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/x.rs", src)),
            ["wall-clock"]
        );
        assert!(lint_file("crates/bench/src/bin/x.rs", src).is_empty());
        let sys = "fn f() { let t = std::time::SystemTime::now(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/trace/src/x.rs", sys)),
            ["wall-clock"]
        );
    }

    #[test]
    fn flags_raw_vho_ids_outside_model_and_net() {
        let src = "fn f() {\n    let v = VhoId::new(0);\n    let w = VhoId::from_index(3);\n}\n";
        let f = lint_file("crates/sim/src/x.rs", src);
        assert_eq!(rules_of(&f), ["raw-index", "raw-index"]);
        assert_eq!((f[0].line, f[1].line), (2, 3));
        assert!(lint_file("crates/model/src/x.rs", src).is_empty());
        assert!(lint_file("crates/net/src/x.rs", src).is_empty());
        // Test code may construct ids freely.
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/sim/src/x.rs", &in_tests).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_next_code_line() {
        let src = "// lint:allow(wall-clock): solver timing is reporting-only\n\
                   // and never feeds back into the optimization.\n\
                   let t = Instant::now();\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_annotation_applies_to_same_line() {
        let src = "let t = Instant::now(); // lint:allow(wall-clock): progress display only\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_is_consumed_by_one_code_line() {
        let src = "// lint:allow(wall-clock): first read only\n\
                   let t = Instant::now();\n\
                   let u = Instant::now();\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["wall-clock"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let src = "// lint:allow(wall-clock)\nlet t = Instant::now();\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["lint-allow", "wall-clock"]);
    }

    #[test]
    fn allow_of_unknown_rule_is_a_finding() {
        let src = "// lint:allow(no-such-rule): whatever\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["lint-allow"]);
        assert!(f[0].message.contains("unknown lint rule"));
    }

    #[test]
    fn flags_nested_f64_matrices_in_hot_paths() {
        let src = "fn f() { let m: Vec<Vec<f64>> = Vec::new(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/epf.rs", src)),
            ["vec-vec-f64"]
        );
        // Outside the hot-path module list the rule is silent.
        assert!(lint_file("crates/core/src/direct.rs", src).is_empty());
        assert!(lint_file("crates/lp/src/lib.rs", src).is_empty());
        // Test modules may build nested reference matrices freely.
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/core/src/penalty.rs", &in_tests).is_empty());
        // A justified allow covers a boundary constructor.
        let allowed = "// lint:allow(vec-vec-f64): boundary constructor flattens rows\n\
                       pub fn from_rows(rows: Vec<Vec<f64>>) {}\n";
        assert!(lint_file("crates/core/src/block.rs", allowed).is_empty());
    }

    #[test]
    fn flags_nested_f64_matrices_in_sim_hot_paths() {
        let src = "fn f() { let m: Vec<Vec<f64>> = Vec::new(); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/sim/src/engine.rs", src)),
            ["vec-vec-f64"]
        );
        // Non-hot-path sim modules are out of scope.
        assert!(lint_file("crates/sim/src/configs.rs", src).is_empty());
    }

    #[test]
    fn flags_boxed_trait_objects_in_sim_hot_paths() {
        let src = "fn f() { let c: Box<dyn Cache + Send> = make(); }\n";
        for path in [
            "crates/sim/src/engine.rs",
            "crates/sim/src/cache.rs",
            "crates/sim/src/batch.rs",
        ] {
            assert_eq!(rules_of(&lint_file(path, src)), ["dyn-dispatch"], "{path}");
        }
        // Out of scope: other crates, non-hot sim modules, test code.
        assert!(lint_file("crates/core/src/epf.rs", src).is_empty());
        assert!(lint_file("crates/sim/src/configs.rs", src).is_empty());
        assert!(lint_file("crates/sim/tests/x.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/sim/src/cache.rs", &in_tests).is_empty());
        // A justified allow still works.
        let allowed = "// lint:allow(dyn-dispatch): plugin boundary, cold path\n\
                       fn g() -> Box<dyn Cache> { make() }\n";
        assert!(lint_file("crates/sim/src/engine.rs", allowed).is_empty());
    }

    #[test]
    fn flags_panics_in_hot_paths() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    let x = v.unwrap();\n    \
                   let y = v.expect(\"set\");\n    panic!(\"boom\");\n}\n";
        for path in [
            "crates/sim/src/engine.rs",
            "crates/sim/src/faults.rs",
            "crates/core/src/epf.rs",
            "crates/core/src/solver.rs",
            "crates/net/src/routing.rs",
            "crates/trace/src/stats.rs",
        ] {
            assert_eq!(
                rules_of(&lint_file(path, src)),
                ["no-panic-hot-path"; 3],
                "{path}"
            );
        }
        // Cold paths, test files, and test modules are out of scope.
        assert!(lint_file("crates/core/src/direct.rs", src).is_empty());
        assert!(lint_file("crates/sim/tests/x.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/sim/src/engine.rs", &in_tests).is_empty());
    }

    #[test]
    fn asserts_and_fallible_cousins_are_not_panics() {
        // Entry-guard asserts and the _or/_err/_else family are fine.
        let src = "fn f(v: Option<u32>) -> u32 {\n    assert!(true);\n    \
                   assert_eq!(1, 1);\n    debug_assert!(true);\n    \
                   v.unwrap_or(0)\n}\n";
        assert!(lint_file("crates/sim/src/engine.rs", src).is_empty());
        let justified =
            "// lint:allow(no-panic-hot-path): index proven in-bounds by construction\n\
             let x = v.unwrap();\n";
        assert!(lint_file("crates/core/src/pool.rs", justified).is_empty());
    }

    #[test]
    fn shims_and_xtask_are_exempt() {
        let src = "fn f() { let t = Instant::now(); let m = HashMap::new(); }\n";
        assert!(lint_file("crates/shims/criterion/src/lib.rs", src).is_empty());
        assert!(lint_file("crates/xtask/src/lint.rs", src).is_empty());
    }

    #[test]
    fn block_comments_are_stripped_across_lines() {
        let src = "/*\n let t = Instant::now();\n*/\nfn f() {}\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_direct_writes_in_snapshot_crates() {
        let src = "fn f() {\n    std::fs::write(&path, bytes)?;\n    \
                   let f = std::fs::File::create(&path)?;\n}\n";
        // In the shim-observable crates a raw write is *two* findings:
        // it can be torn by a crash (snapshot-io) and the injectable
        // fault schedule can never reach it (io-fault-shim).
        for path in ["crates/json/src/snapshot.rs", "crates/ops/src/pipeline.rs"] {
            let f = lint_file(path, src);
            assert_eq!(
                rules_of(&f),
                [
                    "snapshot-io",
                    "io-fault-shim",
                    "snapshot-io",
                    "io-fault-shim"
                ],
                "{path}"
            );
        }
        // The bench harness writes results files (atomicity still
        // required) but is outside the fault shim's jurisdiction: the
        // drills corrupt files deliberately, simulating external
        // damage the shim must not see.
        for path in [
            "crates/bench/src/lib.rs",
            "crates/bench/src/bin/ops_pipeline.rs",
        ] {
            let f = lint_file(path, src);
            assert_eq!(rules_of(&f), ["snapshot-io", "snapshot-io"], "{path}");
        }
    }

    #[test]
    fn flags_shim_bypassing_reads_in_snapshot_crates() {
        let src = "fn f() {\n    let b = std::fs::read(&path)?;\n    \
                   let s = std::fs::read_to_string(&path)?;\n    \
                   let f = std::fs::File::open(&path)?;\n}\n";
        for path in ["crates/json/src/snapshot.rs", "crates/ops/src/service.rs"] {
            assert_eq!(
                rules_of(&lint_file(path, src)),
                ["io-fault-shim"; 3],
                "{path}"
            );
        }
        // Reads are torn-safe, so snapshot-io stays silent; outside the
        // shim's scope (bench, other crates, test code) so does
        // io-fault-shim.
        assert!(lint_file("crates/bench/src/bin/service_drill.rs", src).is_empty());
        assert!(lint_file("crates/core/src/epf.rs", src).is_empty());
        assert!(lint_file("crates/ops/tests/cold_restart.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/json/src/snapshot.rs", &in_tests).is_empty());
        // The sanctioned raw-I/O sites carry a justified allow.
        let allowed = "// lint:allow(io-fault-shim): the shim hook above IS this read's\n\
                       // fault schedule; every snapshot reader funnels through here.\n\
                       std::fs::read(path).map_err(io_err)\n";
        assert!(lint_file("crates/json/src/snapshot.rs", allowed).is_empty());
    }

    #[test]
    fn direct_writes_fine_outside_snapshot_scope_and_in_tests() {
        let src = "fn f() { std::fs::write(&path, bytes).ok(); }\n";
        // Crates that never write durable artifacts are out of scope.
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
        assert!(lint_file("crates/trace/src/x.rs", src).is_empty());
        // Tests corrupt files on purpose.
        assert!(lint_file("crates/ops/tests/pipeline.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/json/src/snapshot.rs", &in_tests).is_empty());
    }

    #[test]
    fn annotated_atomic_helper_is_allowed() {
        // The one sanctioned raw-write site carries both allows: it IS
        // the atomic helper and its preceding shim hook IS the fault
        // schedule.
        let src = "// lint:allow(snapshot-io): this IS the atomic write helper\n\
                   // lint:allow(io-fault-shim): the shim hook above is its schedule\n\
                   std::fs::write(&tmp, bytes)?;\n";
        assert!(lint_file("crates/json/src/snapshot.rs", src).is_empty());
        // One allow alone leaves the other rule firing.
        let half = "// lint:allow(snapshot-io): atomic helper\n\
                    std::fs::write(&tmp, bytes)?;\n";
        assert_eq!(
            rules_of(&lint_file("crates/json/src/snapshot.rs", half)),
            ["io-fault-shim"]
        );
    }

    #[test]
    fn flags_sleeps_outside_the_backoff_module() {
        let src = "fn f() { std::thread::sleep(std::time::Duration::from_millis(5)); }\n";
        for path in [
            "crates/ops/src/service.rs",
            "crates/core/src/epf.rs",
            "crates/sim/src/engine.rs",
        ] {
            assert_eq!(rules_of(&lint_file(path, src)), ["sleep-timer"], "{path}");
        }
        // The sanctioned sites: the recorded-backoff module owns the
        // only real sleep; the bench harness paces real work by design.
        assert!(lint_file("crates/ops/src/supervise.rs", src).is_empty());
        assert!(lint_file("crates/bench/src/bin/x.rs", src).is_empty());
        // Tests and test modules may sleep freely.
        assert!(lint_file("crates/sim/tests/x.rs", src).is_empty());
        let in_tests = format!("#[cfg(test)]\nmod tests {{\n    {src}\n}}\n");
        assert!(lint_file("crates/ops/src/service.rs", &in_tests).is_empty());
        // park_timeout is a disguised sleep; a justified allow works.
        let park = "fn f() { std::thread::park_timeout(d); }\n";
        assert_eq!(
            rules_of(&lint_file("crates/ops/src/pipeline.rs", park)),
            ["sleep-timer"]
        );
        let allowed = "// lint:allow(sleep-timer): shutdown drain, not a backoff\n\
                       std::thread::sleep(d);\n";
        assert!(lint_file("crates/ops/src/service.rs", allowed).is_empty());
    }

    #[test]
    fn pattern_inside_string_literal_is_not_a_finding() {
        let src = "fn f() { let s = \"use std::collections::HashMap;\"; }\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
        let raw = "fn f() { let s = r#\"let t = Instant::now();\"#; }\n";
        assert!(lint_file("crates/core/src/x.rs", raw).is_empty());
    }

    #[test]
    fn pattern_inside_nested_block_comment_is_not_a_finding() {
        let src = "/* outer /* let t = Instant::now(); */ still comment */\nfn f() {}\n";
        assert!(lint_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn decoy_in_string_does_not_mask_real_finding_on_same_line() {
        let src = "fn f() { log(\"Instant::now\"); let t = Instant::now(); }\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), ["wall-clock"]);
    }
}
