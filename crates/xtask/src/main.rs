//! `cargo xtask` — repo-local developer tooling.
//!
//! Currently one subcommand, `lint`, which runs the custom
//! determinism/NaN/wall-clock/id-boundary lint pass over the workspace
//! sources (see [`lint`] and DESIGN.md §5). Exits non-zero when any
//! finding survives.

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// All `.rs` files under `dir`, recursively, as absolute paths.
/// Deterministic: directory entries are sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn run_lint(root: &Path) -> Result<(), usize> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "benches"] {
        rust_files(&root.join(top), &mut files);
    }
    let mut n_findings = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = std::fs::read_to_string(path) else {
            continue;
        };
        for finding in lint::lint_file(&rel, &content) {
            eprintln!("{finding}");
            n_findings += 1;
        }
    }
    if n_findings == 0 {
        eprintln!("xtask lint: {} files clean", files.len());
        Ok(())
    } else {
        Err(n_findings)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("lint");
    match cmd {
        "lint" => match run_lint(&workspace_root()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(n) => {
                eprintln!("xtask lint: {n} finding(s)");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("unknown xtask command {other:?}; available: lint");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod main_tests {
    use super::*;

    /// Acceptance gate: the real workspace is clean under the lint
    /// pass. A regression anywhere in the repo fails this test (and
    /// `cargo xtask lint` in CI).
    #[test]
    fn workspace_is_clean() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "bad workspace root");
        assert_eq!(run_lint(&root), Ok(()));
    }
}
