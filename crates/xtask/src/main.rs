//! `cargo xtask` — repo-local developer tooling.
//!
//! Two subcommands:
//!
//! - `lint` — the fast textual rule pass (see [`lint`] and DESIGN.md
//!   §5). Exits non-zero when any finding survives.
//! - `analyze` — the interprocedural determinism/hot-path analyzer
//!   hosted in the `vod-analyze` crate (see DESIGN.md §8). Findings
//!   are diffed against the checked-in baseline
//!   `results/ANALYZE_baseline.json`; only *new* findings fail the
//!   run. `--json` additionally writes the machine-readable report to
//!   `results/ANALYZE_findings.json`; `--write-baseline` regenerates
//!   the baseline from the current findings.

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_PATH: &str = "results/ANALYZE_baseline.json";
const FINDINGS_PATH: &str = "results/ANALYZE_findings.json";

fn workspace_root() -> PathBuf {
    // crates/xtask/ → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// All `.rs` files under `dir`, recursively, as absolute paths.
/// Deterministic: directory entries are sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Load every workspace `.rs` file as (workspace-relative path,
/// contents) pairs for the analyzer.
fn load_sources(root: &Path) -> Vec<vod_analyze::SourceFile> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "benches"] {
        rust_files(&root.join(top), &mut files);
    }
    let mut out = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = std::fs::read_to_string(path) else {
            continue;
        };
        out.push(vod_analyze::SourceFile { path: rel, content });
    }
    out
}

fn run_lint(root: &Path) -> Result<(), usize> {
    let sources = load_sources(root);
    let mut n_findings = 0usize;
    for s in &sources {
        for finding in lint::lint_file(&s.path, &s.content) {
            eprintln!("{finding}");
            n_findings += 1;
        }
    }
    if n_findings == 0 {
        eprintln!("xtask lint: {} files clean", sources.len());
        Ok(())
    } else {
        Err(n_findings)
    }
}

/// Run the interprocedural analyzer and diff against the baseline.
/// Returns the number of NEW (non-baseline) findings.
fn run_analyze(root: &Path, write_json: bool, write_baseline: bool) -> Result<(), usize> {
    let sources = load_sources(root);
    let result = vod_analyze::analyze_sources(&sources, &vod_analyze::DEFAULT_ROOTS);

    if write_json {
        let report = vod_analyze::report::render_json(&result.findings);
        let path = root.join(FINDINGS_PATH);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("xtask analyze: cannot write {}: {e}", path.display());
        } else {
            eprintln!("xtask analyze: wrote {}", path.display());
        }
    }
    if write_baseline {
        let baseline = vod_analyze::report::render_baseline(&result.findings);
        let path = root.join(BASELINE_PATH);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        return match std::fs::write(&path, baseline) {
            Ok(()) => {
                eprintln!(
                    "xtask analyze: baseline regenerated with {} finding(s) at {}",
                    result.findings.len(),
                    path.display()
                );
                Ok(())
            }
            Err(e) => {
                eprintln!("xtask analyze: cannot write {}: {e}", path.display());
                Err(1)
            }
        };
    }

    let baseline = std::fs::read_to_string(root.join(BASELINE_PATH))
        .map(|s| vod_analyze::report::parse_baseline(&s))
        .unwrap_or_default();
    let mut new_findings = 0usize;
    let mut seen_keys = std::collections::BTreeSet::new();
    for f in &result.findings {
        let key = f.key();
        seen_keys.insert(key.clone());
        if baseline.contains(&key) {
            continue;
        }
        new_findings += 1;
        eprintln!("{f}");
        if !f.chain.is_empty() {
            eprintln!("    reachable: {}", f.chain.join(" -> "));
        }
    }
    let stale_baseline = baseline.difference(&seen_keys).count();
    eprintln!(
        "xtask analyze: {} files, {} fns ({} reachable from {} sink roots), \
         {} finding(s) ({} baselined, {} new); {} stale baseline key(s)",
        result.file_count,
        result.fn_count,
        result.reachable_count,
        vod_analyze::DEFAULT_ROOTS.len(),
        result.findings.len(),
        result.findings.len() - new_findings,
        new_findings,
        stale_baseline,
    );
    if stale_baseline > 0 {
        eprintln!(
            "xtask analyze: note: fixed debt is still listed in {BASELINE_PATH}; \
             refresh it with `cargo xtask analyze --write-baseline`"
        );
    }
    if new_findings == 0 {
        Ok(())
    } else {
        Err(new_findings)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("lint");
    match cmd {
        "lint" => match run_lint(&workspace_root()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(n) => {
                eprintln!("xtask lint: {n} finding(s)");
                ExitCode::FAILURE
            }
        },
        "analyze" => {
            let json = args.iter().any(|a| a == "--json");
            let write_baseline = args.iter().any(|a| a == "--write-baseline");
            match run_analyze(&workspace_root(), json, write_baseline) {
                Ok(()) => ExitCode::SUCCESS,
                Err(n) => {
                    eprintln!("xtask analyze: {n} new finding(s) not in {BASELINE_PATH}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("unknown xtask command {other:?}; available: lint, analyze");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod main_tests {
    use super::*;

    /// Acceptance gate: the real workspace is clean under the lint
    /// pass. A regression anywhere in the repo fails this test (and
    /// `cargo xtask lint` in CI).
    #[test]
    fn workspace_is_clean() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "bad workspace root");
        assert_eq!(run_lint(&root), Ok(()));
    }

    /// Acceptance gate: the interprocedural analyzer reports nothing
    /// beyond the checked-in baseline. New nondeterminism sources,
    /// reachable panics, hot-loop allocations, or stale allows fail
    /// this test (and `cargo xtask analyze` in CI).
    #[test]
    fn analyze_workspace_has_no_new_findings() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "bad workspace root");
        assert_eq!(run_analyze(&root, false, false), Ok(()));
    }
}
