//! End-to-end supervision properties: every cycle yields a
//! serviceable placement, failed cycles degrade to last-good with a
//! typed reason, and a killed/corrupted/resumed run reproduces the
//! uninterrupted run's placements bit for bit.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use std::path::PathBuf;
use vod_core::{DiskConfig, EpfConfig};
use vod_estimate::{EstimateConfig, EstimatorKind};
use vod_model::Mbps;
use vod_net::{topologies, PathSet};
use vod_ops::{
    DegradeReason, FaultPlan, OpsConfig, OpsError, OpsWorld, Pipeline, StageId, StepOutcome,
};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

fn world(seed: u64) -> OpsWorld {
    let mut net = topologies::mesh_backbone(6, 9, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let paths = PathSet::shortest_paths(&net);
    let catalog = synthesize_library(&LibraryConfig::default_for(50, 14, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(600.0, 14, seed));
    let disks = DiskConfig::UniformRatio { ratio: 2.5 }.capacities(&net, catalog.total_size());
    OpsWorld {
        net,
        paths,
        catalog,
        trace,
        disks,
        mip_disk: DiskConfig::UniformRatio { ratio: 2.0 },
        est: EstimateConfig::default(),
    }
}

fn config(seed: u64, dir: PathBuf) -> OpsConfig {
    OpsConfig {
        cycles: 3,
        period_days: 2,
        start_day: 7,
        estimator: EstimatorKind::History,
        epf: EpfConfig {
            max_passes: 60,
            seed,
            ..EpfConfig::default()
        },
        max_attempts: 3,
        checkpoint_every: 3,
        backoff_base_ms: 250,
        validate_tol: 1e-6,
        simulate: true,
        state_dir: dir,
    }
}

/// A clean per-test state directory (stale state from a previous test
/// process would otherwise be resumed).
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vod_ops_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cycle_fingerprints(st: &vod_ops::PipelineState) -> Vec<u64> {
    st.records.iter().map(|r| r.placement_fnv).collect()
}

#[test]
fn every_cycle_of_a_clean_run_is_serviceable() {
    let w = world(42);
    let mut p = Pipeline::resume_or_start(&w, config(42, fresh_dir("clean")), FaultPlan::default())
        .unwrap();
    let n = p.effective_cycles();
    assert!(n >= 2, "world too small for a meaningful schedule");
    let st = p.run().unwrap();
    assert_eq!(st.records.len(), n);
    for r in &st.records {
        assert!(
            r.degraded.is_none(),
            "cycle {} degraded: {:?}",
            r.cycle,
            r.degraded
        );
        assert_ne!(r.placement_fnv, 0, "cycle {} has no placement", r.cycle);
        assert!(r.objective.is_some());
        let sim = r.sim.as_ref().unwrap();
        assert!(sim.total_requests > 0);
        assert!((0.0..=1.0).contains(&sim.local_frac));
    }
    // Consecutive cycles re-anchor on the previous placement, so the
    // ledger's migration counts are meaningful from cycle 1 onwards.
    assert!(st.records[0].migrated == 0);
}

#[test]
fn exhausted_solve_retries_degrade_to_last_good() {
    let w = world(43);
    let dir = fresh_dir("degrade");
    // Fail every allowed attempt of cycle 1's solve stage.
    let faults = FaultPlan {
        fail: vec![
            (1, StageId::Solve, 0),
            (1, StageId::Solve, 1),
            (1, StageId::Solve, 2),
        ],
        kill_mid_solve: Vec::new(),
    };
    let mut p = Pipeline::resume_or_start(&w, config(43, dir), faults).unwrap();
    let st = p.run().unwrap().clone();
    assert!(st.records.len() >= 2);
    let good = &st.records[0];
    let bad = &st.records[1];
    assert!(good.degraded.is_none());
    match bad.degraded.as_ref().unwrap() {
        DegradeReason::StageFailed {
            stage,
            attempts,
            last_error,
        } => {
            assert_eq!(*stage, StageId::Solve);
            assert_eq!(*attempts, 3);
            assert!(last_error.contains("injected"), "{last_error}");
        }
        other => panic!("wrong degrade reason: {other:?}"),
    }
    // The degraded cycle serves the previous cycle's placement …
    assert_eq!(bad.placement_fnv, good.placement_fnv);
    assert!(bad.objective.is_none());
    // … and its recorded backoff grew across the retries.
    assert!(bad.backoff_ms > 0);
    // Cycle 2 recovers with a fresh solve anchored on the same
    // placement.
    if let Some(r2) = st.records.get(2) {
        assert!(r2.degraded.is_none());
    }
}

#[test]
fn first_cycle_failure_has_no_fallback() {
    let w = world(44);
    let faults = FaultPlan {
        fail: (0..3).map(|a| (0, StageId::Solve, a)).collect(),
        kill_mid_solve: Vec::new(),
    };
    let mut p = Pipeline::resume_or_start(&w, config(44, fresh_dir("nofallback")), faults).unwrap();
    match p.run() {
        Err(OpsError::NoFallback { cycle: 0, reason }) => match reason {
            DegradeReason::StageFailed { stage, .. } => assert_eq!(stage, StageId::Solve),
            other => panic!("wrong reason: {other:?}"),
        },
        other => panic!("expected NoFallback, got {other:?}"),
    }
}

#[test]
fn kill_mid_solve_and_resume_is_bitwise_identical() {
    let w = world(45);

    // Baseline: uninterrupted run.
    let mut base =
        Pipeline::resume_or_start(&w, config(45, fresh_dir("kill_base")), FaultPlan::default())
            .unwrap();
    let base_fps = cycle_fingerprints(base.run().unwrap());

    // Killed run: die mid-solve in cycle 0 (after 1 checkpoint) and in
    // cycle 1 (after 2), dropping the pipeline value at each crash and
    // resuming from the durable state alone — a true process death.
    let dir = fresh_dir("kill_resume");
    let mut kills = vec![(0usize, 1u64), (1usize, 2u64)];
    loop {
        let mut p = Pipeline::resume_or_start(
            &w,
            config(45, dir.clone()),
            FaultPlan {
                fail: Vec::new(),
                kill_mid_solve: kills.clone(),
            },
        )
        .unwrap();
        let mut crashed = false;
        loop {
            match p.step().unwrap() {
                StepOutcome::SimulatedCrash { cycle } => {
                    kills.retain(|(c, _)| *c != cycle);
                    crashed = true;
                    break;
                }
                StepOutcome::Finished => break,
                _ => {}
            }
        }
        if !crashed {
            let st = p.state().clone();
            assert!(
                st.resumes >= 2,
                "expected two process resumes, saw {}",
                st.resumes
            );
            assert!(
                st.records.iter().any(|r| r.solver_resumes > 0),
                "no cycle actually resumed a solver checkpoint"
            );
            assert_eq!(cycle_fingerprints(&st), base_fps);
            for r in &st.records {
                assert!(r.degraded.is_none());
            }
            break;
        }
    }
}

#[test]
fn corrupt_state_and_checkpoint_files_recover_typed() {
    let w = world(46);

    let mut base = Pipeline::resume_or_start(
        &w,
        config(46, fresh_dir("corrupt_base")),
        FaultPlan::default(),
    )
    .unwrap();
    let base_fps = cycle_fingerprints(base.run().unwrap());

    // Corrupted run: kill mid-solve, then truncate the solver
    // checkpoint AND garble the pipeline state before resuming. The
    // supervisor must cold-restart (typed, counted) and still land on
    // the identical placements.
    let dir = fresh_dir("corrupt_resume");
    {
        let mut p = Pipeline::resume_or_start(
            &w,
            config(46, dir.clone()),
            FaultPlan {
                fail: Vec::new(),
                kill_mid_solve: vec![(0, 1)],
            },
        )
        .unwrap();
        loop {
            match p.step().unwrap() {
                StepOutcome::SimulatedCrash { .. } => break,
                StepOutcome::Finished => panic!("kill never fired"),
                _ => {}
            }
        }
    }
    // Truncate the checkpoint to half its length and scribble over the
    // state file.
    let ckpt = dir.join("solver.ckpt");
    let bytes = std::fs::read(&ckpt).unwrap();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
    std::fs::write(dir.join("pipeline.state"), b"not a snapshot").unwrap();

    let mut p = Pipeline::resume_or_start(&w, config(46, dir), FaultPlan::default()).unwrap();
    assert_eq!(
        p.state().cold_restarts,
        1,
        "corrupt state must count a cold restart"
    );
    let st = p.run().unwrap();
    assert_eq!(cycle_fingerprints(st), base_fps);
    for r in &st.records {
        assert!(r.degraded.is_none());
    }
}

#[test]
fn validation_failure_degrades_with_typed_reason() {
    let w = world(47);
    let dir = fresh_dir("valfail");
    let mut cfg = config(47, dir);
    // Exhaust the validate stage's attempts in cycle 1: the cycle must
    // close on cycle 0's placement with the failing stage recorded.
    let faults = FaultPlan {
        fail: (0..3).map(|a| (1, StageId::Validate, a)).collect(),
        kill_mid_solve: Vec::new(),
    };
    cfg.simulate = false;
    let mut p = Pipeline::resume_or_start(&w, cfg, faults).unwrap();
    let st = p.run().unwrap();
    let bad = &st.records[1];
    match bad.degraded.as_ref().unwrap() {
        DegradeReason::StageFailed { stage, .. } => assert_eq!(*stage, StageId::Validate),
        other => panic!("wrong reason: {other:?}"),
    }
    assert_eq!(bad.placement_fnv, st.records[0].placement_fnv);
}
