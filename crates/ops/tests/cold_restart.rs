//! Pinned coverage for the supervisor's cold-restart path: a
//! `pipeline.state` file torn at *every byte offset of the snapshot
//! header* (and corrupted at every header byte) must produce a typed
//! cold restart — never a panic, never a resumed-from-garbage state —
//! and the replay after a torn write must land on placements
//! byte-identical to an uninterrupted run. A state file written under
//! a different seed must be refused outright.
//!
//! The second half drills the *injectable I/O fault shim*
//! ([`vod_json::faults`]): ENOSPC, torn partial writes, failed fsync
//! barriers and read EIO, each asserting the atomic-write contract —
//! a failed write leaves the previous snapshot intact and no `*.tmp`
//! debris — and that the supervisor degrades an unreadable state file
//! into a typed cold restart. Every test in this binary holds the
//! shim gate (even with an empty plan) so a test's fault schedule can
//! never leak into a concurrently running neighbour.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use std::path::{Path, PathBuf};
use vod_core::{DiskConfig, EpfConfig};
use vod_estimate::{EstimateConfig, EstimatorKind};
use vod_json::faults::{self, FaultPlan as IoFaultPlan, IoFault, ShimHandle};
use vod_json::snapshot::{read_snapshot, write_snapshot_atomic, SnapshotError};
use vod_model::Mbps;
use vod_net::{topologies, PathSet};
use vod_ops::{FaultPlan, OpsConfig, OpsError, OpsWorld, Pipeline, StepOutcome};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

/// Hold the process-global shim gate with no faults scheduled: the
/// test's own snapshot I/O runs clean, and no other test can install
/// faults underneath it.
fn io_quiet() -> ShimHandle {
    faults::install(IoFaultPlan::default())
}

/// Snapshot container header for the `ops-pipeline` kind: 8B magic +
/// 1B kind-len + 12B kind + 4B version + 8B payload-len + 8B checksum.
const HEADER_LEN: usize = 8 + 1 + "ops-pipeline".len() + 4 + 8 + 8;

fn world(seed: u64) -> OpsWorld {
    let mut net = topologies::mesh_backbone(6, 9, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let paths = PathSet::shortest_paths(&net);
    let catalog = synthesize_library(&LibraryConfig::default_for(40, 14, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(400.0, 14, seed));
    let disks = DiskConfig::UniformRatio { ratio: 2.5 }.capacities(&net, catalog.total_size());
    OpsWorld {
        net,
        paths,
        catalog,
        trace,
        disks,
        mip_disk: DiskConfig::UniformRatio { ratio: 2.0 },
        est: EstimateConfig::default(),
    }
}

fn config(seed: u64, dir: PathBuf) -> OpsConfig {
    OpsConfig {
        cycles: 2,
        period_days: 2,
        start_day: 7,
        estimator: EstimatorKind::History,
        epf: EpfConfig {
            max_passes: 40,
            seed,
            ..EpfConfig::default()
        },
        max_attempts: 3,
        checkpoint_every: 3,
        backoff_base_ms: 250,
        validate_tol: 1e-6,
        simulate: false,
        state_dir: dir,
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vod_cold_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run a pipeline a few steps in, then return the healthy state bytes.
fn partial_state(dir: &Path, seed: u64, w: &OpsWorld, steps: usize) -> Vec<u8> {
    let mut p = Pipeline::resume_or_start(w, config(seed, dir.to_path_buf()), FaultPlan::default())
        .unwrap();
    for _ in 0..steps {
        assert_ne!(p.step().unwrap(), StepOutcome::Finished);
    }
    std::fs::read(dir.join("pipeline.state")).unwrap()
}

#[test]
fn torn_header_writes_at_every_offset_cold_restart() {
    let _io = io_quiet();
    let w = world(60);
    let dir = fresh_dir("torn");
    let clean = partial_state(&dir, 60, &w, 3);
    assert!(clean.len() > HEADER_LEN, "state should outgrow its header");
    let path = dir.join("pipeline.state");

    for offset in 0..=HEADER_LEN {
        // Torn write: only the first `offset` bytes hit the disk.
        std::fs::write(&path, &clean[..offset]).unwrap();
        let p =
            Pipeline::resume_or_start(&w, config(60, dir.clone()), FaultPlan::default()).unwrap();
        assert_eq!(
            p.state().cold_restarts,
            1,
            "truncation at {offset} must cold-restart, not resume"
        );
        assert_eq!(p.state().cycle, 0, "cold restart starts from cycle 0");

        if offset < HEADER_LEN {
            // Bit rot inside the header: magic, kind, version, length
            // and checksum corruptions are all typed rejections.
            let mut rotted = clean.clone();
            rotted[offset] ^= 0x20;
            std::fs::write(&path, &rotted).unwrap();
            let p = Pipeline::resume_or_start(&w, config(60, dir.clone()), FaultPlan::default())
                .unwrap();
            assert_eq!(
                p.state().cold_restarts,
                1,
                "header corruption at {offset} must cold-restart"
            );
        }
    }

    // The pristine bytes still resume (the loop never spoiled them).
    std::fs::write(&path, &clean).unwrap();
    let p = Pipeline::resume_or_start(&w, config(60, dir), FaultPlan::default()).unwrap();
    assert_eq!(p.state().cold_restarts, 0, "clean state must resume");
    assert!(p.state().resumes >= 1);
}

#[test]
fn replay_after_torn_write_matches_uninterrupted_run() {
    let _io = io_quiet();
    let w = world(61);

    let mut base =
        Pipeline::resume_or_start(&w, config(61, fresh_dir("torn_base")), FaultPlan::default())
            .unwrap();
    let base_fps: Vec<u64> = base
        .run()
        .unwrap()
        .records
        .iter()
        .map(|r| r.placement_fnv)
        .collect();

    // Interrupt mid-schedule with a torn state write, then let the
    // cold restart replay the whole schedule.
    let dir = fresh_dir("torn_replay");
    let clean = partial_state(&dir, 61, &w, 7);
    let cut = HEADER_LEN / 2;
    std::fs::write(dir.join("pipeline.state"), &clean[..cut]).unwrap();
    let mut p = Pipeline::resume_or_start(&w, config(61, dir), FaultPlan::default()).unwrap();
    assert_eq!(p.state().cold_restarts, 1);
    let st = p.run().unwrap();
    let fps: Vec<u64> = st.records.iter().map(|r| r.placement_fnv).collect();
    assert_eq!(fps, base_fps, "cold replay must reproduce the baseline");
}

#[test]
fn seed_mismatch_refuses_to_clobber_foreign_state() {
    let _io = io_quiet();
    let w = world(62);
    let dir = fresh_dir("seed");
    let _ = partial_state(&dir, 62, &w, 2);
    // Same directory, different experiment seed: typed refusal, and
    // the foreign state file is left byte-for-byte intact.
    let before = std::fs::read(dir.join("pipeline.state")).unwrap();
    match Pipeline::resume_or_start(&w, config(63, dir.clone()), FaultPlan::default()) {
        Err(OpsError::Invalid { what }) => {
            assert!(what.contains("seed"), "{what}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    let after = std::fs::read(dir.join("pipeline.state")).unwrap();
    assert_eq!(before, after, "refusal must not touch the state file");
}

// ---------------------------------------------------------------------------
// Injectable I/O fault shim: the atomic-write contract under ENOSPC,
// torn partial writes and failed durability barriers.
// ---------------------------------------------------------------------------

#[test]
fn injected_write_faults_leave_previous_snapshot_intact() {
    let dir = fresh_dir("io_write_faults");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.snap");
    let tmp = dir.join("victim.snap.tmp");
    // Torn-write offsets cover: nothing landed, mid-header, header
    // boundary, mid-payload, and longer-than-the-payload (clamped).
    let cases = [
        IoFault::WriteEnospc,
        IoFault::WritePartial { keep: 0 },
        IoFault::WritePartial { keep: 1 },
        IoFault::WritePartial { keep: 8 },
        IoFault::WritePartial { keep: HEADER_LEN },
        IoFault::WritePartial {
            keep: HEADER_LEN + 5,
        },
        IoFault::WritePartial { keep: 1 << 20 },
        IoFault::FsyncFail,
    ];
    for fault in cases {
        write_snapshot_atomic(&path, "ops-pipeline", 1, b"previous payload").unwrap();
        let shim = faults::install(IoFaultPlan::one_write(0, fault));
        let err = write_snapshot_atomic(&path, "ops-pipeline", 1, b"NEW payload, never visible")
            .expect_err("the injected fault must fail the write");
        assert!(matches!(err, SnapshotError::Io { .. }), "{fault}: {err}");
        assert_eq!(shim.writes_seen(), 1, "{fault}");
        drop(shim);
        assert!(!tmp.exists(), "{fault}: stray temp file left behind");
        assert_eq!(
            read_snapshot(&path, "ops-pipeline", 1).unwrap(),
            b"previous payload",
            "{fault}: destination must keep the old bytes"
        );
    }
}

#[test]
fn injected_enospc_mid_pipeline_fails_typed_not_torn() {
    // A full disk mid-run surfaces as a typed Io error from the step
    // that hit it — and because the write was atomic-or-nothing, the
    // durable state stays the *previous* transition, which resumes.
    let w = world(64);
    let dir = fresh_dir("io_enospc_pipeline");
    {
        let _io = io_quiet();
        let _ = partial_state(&dir, 64, &w, 3);
    }
    // The constructor's own persist hits the injected ENOSPC; the
    // pipeline treats persistence as load-bearing and propagates it as
    // a typed Io error (the *service* is the layer that soft-persists).
    let shim = faults::install(IoFaultPlan::one_write(0, IoFault::WriteEnospc));
    match Pipeline::resume_or_start(&w, config(64, dir.clone()), FaultPlan::default()) {
        Err(OpsError::Io { what }) => assert!(what.contains("os error 28"), "{what}"),
        Ok(_) => panic!("ENOSPC on the state write must surface as Io"),
        Err(other) => panic!("expected Io, got {other:?}"),
    }
    drop(shim);
    let _io = io_quiet();
    // The disk "healed", and the failed write was atomic-or-nothing:
    // the same directory resumes from the last durable transition
    // without a cold restart.
    let p2 = Pipeline::resume_or_start(&w, config(64, dir), FaultPlan::default()).unwrap();
    assert_eq!(p2.state().cold_restarts, 0, "state must still be readable");
    assert!(p2.state().resumes >= 1);
}

#[test]
fn injected_read_eio_cold_restarts_then_heals() {
    let w = world(65);
    let dir = fresh_dir("io_read_eio");
    {
        let _io = io_quiet();
        let _ = partial_state(&dir, 65, &w, 3);
    }
    // Unreadable sector under pipeline.state: the resume degrades to a
    // typed cold restart instead of propagating or panicking.
    let shim = faults::install(IoFaultPlan::one_read(0));
    let p = Pipeline::resume_or_start(&w, config(65, dir.clone()), FaultPlan::default()).unwrap();
    assert_eq!(
        p.state().cold_restarts,
        1,
        "read EIO must cold-restart, not resume garbage"
    );
    drop(p);
    drop(shim);
    // The sector heals before the cold restart persisted over it? No —
    // the cold constructor already rewrote the state. A fresh resume
    // continues from the cold-restarted state cleanly.
    let _io = io_quiet();
    let p2 = Pipeline::resume_or_start(&w, config(65, dir), FaultPlan::default()).unwrap();
    assert!(p2.state().resumes >= 1);
}
