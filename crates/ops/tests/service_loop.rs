//! End-to-end properties of the long-running service loop: every
//! cycle deploys (or degrades with a typed reason, never aborts), the
//! churn cap bounds per-cycle migration with deferrals that drain,
//! stale-serve windows account their denials, the watchdog degrades
//! stalled cycles, and kill/corruption at any point re-converges to
//! the uninterrupted run's deployments bit for bit.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use std::path::PathBuf;
use vod_core::{DiskConfig, EpfConfig};
use vod_estimate::{EstimateConfig, EstimatorKind};
use vod_model::{Mbps, SimTime, VhoId};
use vod_net::{topologies, PathSet};
use vod_ops::{
    apply_churn_cap, DegradeReason, OpsConfig, OpsError, OpsWorld, RecoveryAction, Service,
    ServiceConfig, ServicePlan, ServiceState, StageId, StepOutcome,
};
use vod_sim::{FaultEvent, FaultKind, FaultSchedule};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

fn world(seed: u64) -> OpsWorld {
    let mut net = topologies::mesh_backbone(6, 9, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let paths = PathSet::shortest_paths(&net);
    let catalog = synthesize_library(&LibraryConfig::default_for(50, 14, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(600.0, 14, seed));
    let disks = DiskConfig::UniformRatio { ratio: 2.5 }.capacities(&net, catalog.total_size());
    OpsWorld {
        net,
        paths,
        catalog,
        trace,
        disks,
        mip_disk: DiskConfig::UniformRatio { ratio: 2.0 },
        est: EstimateConfig::default(),
    }
}

fn config(seed: u64, dir: PathBuf) -> ServiceConfig {
    ServiceConfig {
        ops: OpsConfig {
            cycles: 3,
            period_days: 2,
            start_day: 7,
            estimator: EstimatorKind::History,
            epf: EpfConfig {
                max_passes: 60,
                seed,
                ..EpfConfig::default()
            },
            max_attempts: 3,
            checkpoint_every: 3,
            backoff_base_ms: 250,
            validate_tol: 1e-6,
            simulate: true,
            state_dir: dir,
        },
        churn_cap: None,
        cycle_step_budget: None,
        watchdog_budget: 32,
        cycle_faults: Vec::new(),
        cycle_deltas: Vec::new(),
    }
}

/// A clean per-test state directory (stale state from a previous test
/// process would otherwise be resumed).
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vod_svc_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fingerprints(st: &ServiceState) -> Vec<u64> {
    st.records.iter().map(|r| r.placement_fnv).collect()
}

#[test]
fn clean_service_run_deploys_every_cycle() {
    let w = world(42);
    let mut s =
        Service::resume_or_start(&w, config(42, fresh_dir("clean")), ServicePlan::default())
            .unwrap();
    let n = s.effective_cycles();
    assert!(n >= 2, "world too small for a meaningful schedule");
    let st = s.run().unwrap();
    assert_eq!(st.records.len(), n);
    for r in &st.records {
        assert!(
            r.degraded.is_none(),
            "cycle {} degraded: {:?}",
            r.cycle,
            r.degraded
        );
        assert!(!r.stale);
        assert_ne!(r.placement_fnv, 0, "cycle {} deployed nothing", r.cycle);
        let obj = r.objective.unwrap();
        let lb = r.lower_bound.unwrap();
        assert!(
            lb <= obj * (1.0 + 1e-9),
            "cycle {}: lower bound {lb} above objective {obj}",
            r.cycle
        );
        let rate = r.denial_rate.unwrap();
        assert!((0.0..=1.0).contains(&rate));
        assert!(r.sim.as_ref().unwrap().total_requests > 0);
    }
    // Uncapped: the bootstrap is free and nothing is ever deferred.
    assert_eq!(st.records[0].moved, 0);
    assert!(st.records.iter().all(|r| r.deferred == 0));
    // Re-anchored warm solves actually move copies after bootstrap.
    assert!(st.records.iter().skip(1).any(|r| r.moved > 0));
}

#[test]
fn service_runs_are_deterministic() {
    let w = world(48);
    let a = Service::resume_or_start(&w, config(48, fresh_dir("det_a")), ServicePlan::default())
        .unwrap()
        .run()
        .unwrap()
        .clone();
    let b = Service::resume_or_start(&w, config(48, fresh_dir("det_b")), ServicePlan::default())
        .unwrap()
        .run()
        .unwrap()
        .clone();
    assert_eq!(fingerprints(&a), fingerprints(&b));
    assert_eq!(
        a.records.iter().map(|r| r.denied).collect::<Vec<_>>(),
        b.records.iter().map(|r| r.denied).collect::<Vec<_>>()
    );
}

#[test]
fn churn_cap_is_enforced_and_deferrals_drain() {
    let w = world(43);

    // Uncapped twin: its final deployment is a full solver target.
    let base = Service::resume_or_start(
        &w,
        config(43, fresh_dir("cap_base")),
        ServicePlan::default(),
    )
    .unwrap()
    .run()
    .unwrap()
    .clone();
    let full_target = base.deployed.as_ref().unwrap().1.clone();

    let mut cfg = config(43, fresh_dir("capped"));
    cfg.churn_cap = Some(1);
    let st = Service::resume_or_start(&w, cfg, ServicePlan::default())
        .unwrap()
        .run()
        .unwrap()
        .clone();
    for r in &st.records {
        assert!(r.moved <= 1, "cycle {} moved {} > cap 1", r.cycle, r.moved);
        assert!(r.degraded.is_none());
    }
    assert!(
        st.records.iter().any(|r| r.deferred > 0),
        "cap 1 never created deferral pressure: {:?}",
        st.records.iter().map(|r| r.deferred).collect::<Vec<_>>()
    );

    // Drain: keep applying the capped diff toward a fixed target; the
    // queue must empty and the hybrid must converge, one copy per
    // round, with the cap never exceeded.
    let (_, mut current) = st.deployed.clone().unwrap();
    let mut deferred = st.deferred.clone();
    let total_gap = full_target.migration_copies_from(&current);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(
            rounds <= total_gap + 2,
            "queue failed to drain within {total_gap} + 2 rounds"
        );
        let plan =
            apply_churn_cap(&current, &full_target, Some(1), &deferred, 100 + rounds).unwrap();
        assert!(plan.moved <= 1);
        current = plan.placement;
        deferred = plan.deferred;
        if deferred.is_empty() && current.holder_lists() == full_target.holder_lists() {
            break;
        }
    }
}

#[test]
fn stale_serve_accounts_denials_instead_of_aborting() {
    let w = world(44);
    // Exhaust cycle 0's solve retries: where the pipeline would stop
    // with NoFallback, the service must stale-serve and keep going.
    let plan = ServicePlan {
        fail: (0..3).map(|a| (0, StageId::Solve, a)).collect(),
        ..ServicePlan::default()
    };
    let mut s = Service::resume_or_start(&w, config(44, fresh_dir("stale")), plan).unwrap();
    let st = s.run().unwrap();
    let bad = &st.records[0];
    assert!(matches!(
        bad.degraded,
        Some(DegradeReason::StageFailed {
            stage: StageId::Solve,
            ..
        })
    ));
    assert!(bad.stale);
    assert_eq!(bad.placement_fnv, 0);
    assert_eq!(bad.denial_rate, Some(1.0));
    assert!(bad.denied > 0, "a stale-served window must count denials");
    assert!(bad.recoveries.contains(&RecoveryAction::StaleServe));
    assert_eq!(st.stale_serves, 1);
    // The very next cycle recovers with a fresh deployment.
    let good = &st.records[1];
    assert!(good.degraded.is_none());
    assert_ne!(good.placement_fnv, 0);
    assert!(!good.stale);
}

#[test]
fn watchdog_degrades_stalled_cycles_with_typed_reason() {
    let w = world(45);
    let mut cfg = config(45, fresh_dir("stall"));
    // Three ticks cannot close a five-stage cycle: every cycle stalls
    // at the round stage, deterministically.
    cfg.watchdog_budget = 3;
    let mut s = Service::resume_or_start(&w, cfg, ServicePlan::default()).unwrap();
    let st = s.run().unwrap();
    assert!(!st.records.is_empty());
    for r in &st.records {
        match r.degraded.as_ref().unwrap() {
            DegradeReason::Stalled {
                stage,
                ticks,
                budget,
            } => {
                assert_eq!(*stage, StageId::Round);
                assert_eq!(*budget, 3);
                assert!(*ticks >= *budget);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        assert!(r.stale, "no cycle ever deployed, so all serve stale");
    }
}

#[test]
fn replay_faults_change_denials_but_never_placements() {
    let w = world(46);
    let quiet =
        Service::resume_or_start(&w, config(46, fresh_dir("quiet")), ServicePlan::default())
            .unwrap()
            .run()
            .unwrap()
            .clone();
    let mut cfg = config(46, fresh_dir("stormy"));
    // A full-window storm in cycle 1: two VHOs dark, admission control
    // on. This only touches the replay stage — the solve trajectory
    // must be untouched.
    let horizon = w.trace.horizon();
    cfg.cycle_faults = vec![(
        1,
        FaultSchedule {
            events: vec![
                FaultEvent {
                    start: SimTime::new(0),
                    end: horizon,
                    kind: FaultKind::VhoOutage { vho: VhoId::new(1) },
                },
                FaultEvent {
                    start: SimTime::new(0),
                    end: horizon,
                    kind: FaultKind::VhoOutage { vho: VhoId::new(2) },
                },
            ],
            admission: true,
        },
    )];
    let stormy = Service::resume_or_start(&w, cfg, ServicePlan::default())
        .unwrap()
        .run()
        .unwrap()
        .clone();
    assert_eq!(fingerprints(&quiet), fingerprints(&stormy));
    assert!(
        stormy.records[1].denied >= quiet.records[1].denied,
        "an outage storm cannot reduce denials"
    );
}

#[test]
fn kills_and_torn_state_resume_to_identical_deployments() {
    let w = world(47);
    let base = Service::resume_or_start(
        &w,
        config(47, fresh_dir("kill_base")),
        ServicePlan::default(),
    )
    .unwrap()
    .run()
    .unwrap()
    .clone();
    let base_fps = fingerprints(&base);

    // Chaos run: stage-boundary kills, a mid-solve kill, and a torn
    // state file after the first crash. Every crash drops the service
    // value and rebuilds it from the durable state alone.
    let dir = fresh_dir("kill_resume");
    let mut stage_kills = vec![(0usize, StageId::Solve), (2usize, StageId::Validate)];
    let mut solve_kills = vec![(1usize, 1u64)];
    let mut torn = false;
    let mut crashes = 0usize;
    loop {
        let plan = ServicePlan {
            fail: Vec::new(),
            kill_at_stage: stage_kills.clone(),
            kill_mid_solve: solve_kills.clone(),
        };
        let mut s = Service::resume_or_start(&w, config(47, dir.clone()), plan).unwrap();
        let mut crashed = false;
        loop {
            match s.step().unwrap() {
                StepOutcome::SimulatedCrash { cycle } => {
                    // Drop whichever kill just fired so the "restart"
                    // makes progress past it: a stage kill reports with
                    // the stage still pending, a mid-solve kill leaves
                    // the solve stage current.
                    let stg = s.state().stage;
                    if stage_kills.contains(&(cycle, stg)) {
                        stage_kills.retain(|&k| k != (cycle, stg));
                    } else {
                        solve_kills.retain(|(c, _)| *c != cycle);
                    }
                    crashed = true;
                    crashes += 1;
                    break;
                }
                StepOutcome::Finished => break,
                _ => {}
            }
        }
        if crashed {
            if !torn {
                // Tear the state file mid-write: the next resume must
                // cold-restart (typed, counted) and replay to the same
                // deployments.
                let path = dir.join("service.state");
                let bytes = std::fs::read(&path).unwrap();
                std::fs::write(&path, &bytes[..bytes.len().min(23)]).unwrap();
                torn = true;
            }
            continue;
        }
        let st = s.state().clone();
        assert!(crashes >= 3, "expected all three kills to fire");
        assert!(
            st.cold_restarts >= 1,
            "torn state must count a cold restart"
        );
        assert_eq!(fingerprints(&st), base_fps);
        for r in &st.records {
            assert!(r.degraded.is_none());
        }
        break;
    }
}

#[test]
fn budgeted_cycles_still_deploy_serviceably() {
    let w = world(49);
    let mut cfg = config(49, fresh_dir("budget"));
    cfg.cycle_step_budget = Some(10);
    let mut s = Service::resume_or_start(&w, cfg, ServicePlan::default()).unwrap();
    let st = s.run().unwrap();
    for r in &st.records {
        assert!(
            r.degraded.is_none(),
            "a tight step budget must degrade quality, not the cycle: {:?}",
            r.degraded
        );
        assert_ne!(r.placement_fnv, 0);
    }
}

#[test]
fn seed_mismatch_is_refused_and_foreign_faults_rejected() {
    let w = world(50);
    let dir = fresh_dir("mismatch");
    Service::resume_or_start(&w, config(50, dir.clone()), ServicePlan::default())
        .unwrap()
        .run()
        .unwrap();
    // Same state dir, different seed: refuse, don't clobber.
    let other = config(51, dir);
    match Service::resume_or_start(&w, other, ServicePlan::default()) {
        Err(OpsError::Invalid { what }) => assert!(what.contains("seed"), "{what}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    // A fault schedule naming a VHO outside the world is rejected up
    // front.
    let mut bad = config(52, fresh_dir("badfaults"));
    bad.cycle_faults = vec![(
        0,
        FaultSchedule {
            events: vec![FaultEvent {
                start: SimTime::new(0),
                end: SimTime::new(10),
                kind: FaultKind::VhoOutage {
                    vho: VhoId::new(99),
                },
            }],
            admission: false,
        },
    )];
    match Service::resume_or_start(&w, bad, ServicePlan::default()) {
        Err(OpsError::Invalid { what }) => assert!(what.contains("fault"), "{what}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
}
