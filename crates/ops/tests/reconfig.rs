//! Live-reconfiguration robustness: validated world deltas (topology
//! and catalog churn) applied between cycles as durable transitions,
//! feasibility repair of the serving placement under the churn cap,
//! warm-state remapping across compatible deltas, typed checkpoint
//! rejection, and injected snapshot-I/O fault storms — all while the
//! service re-converges byte-identically to an undisturbed twin and
//! never aborts. Every test holds the process-global I/O shim gate
//! (even with an empty plan) so fault schedules cannot leak between
//! concurrently running tests.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]

use std::path::PathBuf;
use vod_core::{DiskConfig, EpfConfig};
use vod_estimate::{EstimateConfig, EstimatorKind};
use vod_json::faults::{self, FaultPlan as IoFaultPlan, IoFault, ShimHandle};
use vod_model::{Gigabytes, LinkId, Mbps, VhoId};
use vod_net::{topologies, PathSet};
use vod_ops::{
    DegradeReason, DeltaOp, OpsConfig, OpsError, OpsWorld, RecoveryAction, Service, ServiceConfig,
    ServicePlan, ServiceState, StageId, StepOutcome, WorldDelta,
};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

/// Hold the shim gate with no faults scheduled.
fn io_quiet() -> ShimHandle {
    faults::install(IoFaultPlan::default())
}

fn world(seed: u64) -> OpsWorld {
    let mut net = topologies::mesh_backbone(6, 9, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let paths = PathSet::shortest_paths(&net);
    let catalog = synthesize_library(&LibraryConfig::default_for(50, 14, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(600.0, 14, seed));
    let disks = DiskConfig::UniformRatio { ratio: 2.5 }.capacities(&net, catalog.total_size());
    OpsWorld {
        net,
        paths,
        catalog,
        trace,
        disks,
        mip_disk: DiskConfig::UniformRatio { ratio: 2.0 },
        est: EstimateConfig::default(),
    }
}

fn config(seed: u64, dir: PathBuf) -> ServiceConfig {
    ServiceConfig {
        ops: OpsConfig {
            cycles: 3,
            period_days: 2,
            start_day: 7,
            estimator: EstimatorKind::History,
            epf: EpfConfig {
                max_passes: 60,
                seed,
                ..EpfConfig::default()
            },
            max_attempts: 3,
            checkpoint_every: 3,
            backoff_base_ms: 250,
            validate_tol: 1e-6,
            simulate: true,
            state_dir: dir,
        },
        churn_cap: None,
        cycle_step_budget: None,
        watchdog_budget: 32,
        cycle_faults: Vec::new(),
        cycle_deltas: Vec::new(),
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vod_reconf_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fingerprints(st: &ServiceState) -> Vec<u64> {
    st.records.iter().map(|r| r.placement_fnv).collect()
}

/// A three-cycle reconfiguration storm: a capacity-only squeeze before
/// cycle 1, then a VHO decommission plus catalog growth before cycle 2.
fn storm_deltas() -> Vec<WorldDelta> {
    vec![
        WorldDelta {
            cycle: 1,
            seed: 0xD1,
            ops: vec![
                DeltaOp::ScaleLink {
                    link: LinkId::new(0),
                    factor: 0.5,
                },
                DeltaOp::CutLink {
                    link: LinkId::new(1),
                },
            ],
        },
        WorldDelta {
            cycle: 2,
            seed: 0xD2,
            ops: vec![
                DeltaOp::DecommissionVho { vho: VhoId::new(1) },
                DeltaOp::AppendVideos { count: 5 },
            ],
        },
    ]
}

#[test]
fn deltas_apply_between_cycles_with_repair_and_warm_remap() {
    let _io = io_quiet();
    let w = world(70);
    let mut cfg = config(70, fresh_dir("apply"));
    cfg.cycle_deltas = storm_deltas();
    let mut s = Service::resume_or_start(&w, cfg, ServicePlan::default()).unwrap();

    let mut applied = Vec::new();
    loop {
        match s.step().unwrap() {
            StepOutcome::DeltaApplied { cycle, index } => applied.push((cycle, index)),
            StepOutcome::Finished => break,
            _ => {}
        }
    }
    assert_eq!(
        applied,
        vec![(1, 0), (2, 1)],
        "each delta fires once, at the start of its cycle"
    );

    // The world evolved in place: cycle 2's delta darkened VHO 1 and
    // grew the catalog tail.
    assert!(s.dark_mask()[1], "VHO 1 must be storage-dark");
    assert_eq!(s.world().catalog.len(), 55, "catalog grew by 5");
    assert_eq!(s.world().disks[1], Gigabytes::new(0.0));

    let st = s.state().clone();
    assert_eq!(st.records.len(), 3);
    for r in &st.records {
        assert!(r.degraded.is_none(), "cycle {}: {:?}", r.cycle, r.degraded);
        assert_ne!(r.placement_fnv, 0);
    }
    // The capacity-only delta carried the deployment across via warm
    // remap and needed no feasibility repair (disks untouched).
    assert!(
        st.records[1]
            .recoveries
            .contains(&RecoveryAction::WarmRemap),
        "capacity-only delta must record warm-remap: {:?}",
        st.records[1].recoveries
    );
    assert!(st.records[1].repairs.is_empty());
    // The decommission stranded copies on VHO 1: the repair plan ran
    // and left a fingerprint in the cycle ledger.
    assert!(
        !st.records[2].repairs.is_empty(),
        "darkening a serving VHO must trigger feasibility repair"
    );
    // Uncapped: by the final deployment nothing is placed on the dark
    // VHO (a capped run may legitimately still be draining it).
    let (_, deployed) = st.deployed.as_ref().unwrap();
    for (vid, holders) in deployed.holder_lists().iter().enumerate() {
        assert!(
            !holders.contains(&VhoId::new(1)),
            "video {vid} still has a copy on the dark VHO"
        );
    }
}

#[test]
fn delta_schedule_is_validated_up_front() {
    let _io = io_quiet();
    let w = world(71);

    // Out of order by cycle: refused before any state is touched.
    let mut unsorted = config(71, fresh_dir("unsorted"));
    unsorted.cycle_deltas = vec![
        WorldDelta {
            cycle: 2,
            seed: 1,
            ops: vec![DeltaOp::CutLink {
                link: LinkId::new(0),
            }],
        },
        WorldDelta {
            cycle: 1,
            seed: 2,
            ops: vec![DeltaOp::AppendVideos { count: 1 }],
        },
    ];
    match Service::resume_or_start(&w, unsorted, ServicePlan::default()) {
        Err(OpsError::Invalid { what }) => assert!(what.contains("sorted"), "{what}"),
        other => panic!("expected Invalid, got {other:?}"),
    }

    // A delta naming a VHO outside the world is refused with the
    // validator's dangling diagnostic, prefixed by its index.
    let mut dangling = config(72, fresh_dir("dangling"));
    dangling.cycle_deltas = vec![WorldDelta {
        cycle: 0,
        seed: 3,
        ops: vec![DeltaOp::DecommissionVho {
            vho: VhoId::new(99),
        }],
    }];
    match Service::resume_or_start(&w, dangling, ServicePlan::default()) {
        Err(OpsError::Invalid { what }) => {
            assert!(what.contains("world delta 0"), "{what}");
            assert!(what.contains("dangling"), "{what}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn delta_storms_with_kills_and_torn_state_reconverge_identically() {
    let _io = io_quiet();
    let w = world(73);
    let mut base_cfg = config(73, fresh_dir("storm_base"));
    base_cfg.cycle_deltas = storm_deltas();
    base_cfg.churn_cap = Some(3);
    let base = Service::resume_or_start(&w, base_cfg, ServicePlan::default())
        .unwrap()
        .run()
        .unwrap()
        .clone();
    let base_fps = fingerprints(&base);

    // Chaos twin: same deltas and cap, plus stage-boundary kills, a
    // mid-solve kill, and a torn state file after the first crash.
    let dir = fresh_dir("storm_chaos");
    let mut stage_kills = vec![(1usize, StageId::Solve), (2usize, StageId::Validate)];
    let mut solve_kills = vec![(2usize, 1u64)];
    let mut torn = false;
    let mut crashes = 0usize;
    let st = loop {
        let plan = ServicePlan {
            fail: Vec::new(),
            kill_at_stage: stage_kills.clone(),
            kill_mid_solve: solve_kills.clone(),
        };
        let mut cfg = config(73, dir.clone());
        cfg.cycle_deltas = storm_deltas();
        cfg.churn_cap = Some(3);
        let mut s = Service::resume_or_start(&w, cfg, plan).unwrap();
        let mut crashed = false;
        loop {
            match s.step().unwrap() {
                StepOutcome::SimulatedCrash { cycle } => {
                    let stg = s.state().stage;
                    if stage_kills.contains(&(cycle, stg)) {
                        stage_kills.retain(|&k| k != (cycle, stg));
                    } else {
                        solve_kills.retain(|(c, _)| *c != cycle);
                    }
                    crashed = true;
                    crashes += 1;
                    break;
                }
                StepOutcome::Finished => break,
                _ => {}
            }
        }
        if crashed {
            if !torn {
                let path = dir.join("service.state");
                let bytes = std::fs::read(&path).unwrap();
                std::fs::write(&path, &bytes[..bytes.len().min(23)]).unwrap();
                torn = true;
            }
            continue;
        }
        break s.state().clone();
    };
    assert!(crashes >= 3, "expected all three kills to fire");
    assert!(st.cold_restarts >= 1, "torn state must cold-restart");

    // Identity anchors: placements, denials, repair plans and
    // checkpoint-rejection ledgers are byte-for-byte the base twin's.
    assert_eq!(fingerprints(&st), base_fps);
    assert_eq!(
        st.records.iter().map(|r| r.denied).collect::<Vec<_>>(),
        base.records.iter().map(|r| r.denied).collect::<Vec<_>>()
    );
    assert_eq!(
        st.records
            .iter()
            .map(|r| r.repairs.clone())
            .collect::<Vec<_>>(),
        base.records
            .iter()
            .map(|r| r.repairs.clone())
            .collect::<Vec<_>>()
    );
    // The churn cap holds in both twins, through repair and deploy.
    for r in st.records.iter().chain(base.records.iter()) {
        assert!(r.moved <= 3, "cycle {} moved {} > cap 3", r.cycle, r.moved);
        assert!(r.degraded.is_none());
    }
}

#[test]
fn snapshot_fault_storm_degrades_but_reconverges() {
    let w = world(74);
    let clean = {
        let _io = io_quiet();
        let mut cfg = config(74, fresh_dir("iostorm_base"));
        cfg.cycle_deltas = storm_deltas();
        Service::resume_or_start(&w, cfg, ServicePlan::default())
            .unwrap()
            .run()
            .unwrap()
            .clone()
    };

    // Storm twin: every snapshot write for the whole run fails, with
    // the fault flavour rotating through ENOSPC, torn partial writes
    // and failed fsync barriers. Nothing durable ever lands — the
    // service keeps serving from memory, records its backoff, and
    // still converges to the clean twin's exact deployments.
    let faults_cycle = [
        IoFault::WriteEnospc,
        IoFault::WritePartial { keep: 7 },
        IoFault::FsyncFail,
        IoFault::WritePartial { keep: 0 },
    ];
    let plan = IoFaultPlan {
        writes: (0..512)
            .map(|i| (i, faults_cycle[(i % 4) as usize]))
            .collect(),
        reads: Vec::new(),
    };
    let shim = faults::install(plan);
    let mut cfg = config(74, fresh_dir("iostorm"));
    cfg.cycle_deltas = storm_deltas();
    let mut s = Service::resume_or_start(&w, cfg, ServicePlan::default()).unwrap();
    assert!(s.is_dirty(), "the constructor's persist already failed");
    let st = s.run().unwrap().clone();
    assert!(shim.writes_seen() > 0);
    drop(shim);

    assert_eq!(fingerprints(&st), fingerprints(&clean));
    assert_eq!(
        st.records.iter().map(|r| r.denied).collect::<Vec<_>>(),
        clean.records.iter().map(|r| r.denied).collect::<Vec<_>>()
    );
    assert!(st.snapshot_failures > 0);
    // Every cycle closed dirty: the degradation is typed, counted and
    // carries the last failure's description.
    for r in &st.records {
        match r.degraded.as_ref() {
            Some(DegradeReason::SnapshotUnavailable { failures, what }) => {
                assert!(*failures > 0);
                assert!(!what.is_empty());
            }
            other => panic!(
                "cycle {} must degrade SnapshotUnavailable, got {other:?}",
                r.cycle
            ),
        }
        // The retries recorded deterministic backoff instead of
        // sleeping or aborting.
        assert!(r.backoff_ms > 0, "cycle {} recorded no backoff", r.cycle);
        assert_ne!(r.placement_fnv, 0, "cycle {} failed to deploy", r.cycle);
    }
}

#[test]
fn checkpoint_rejection_is_classified_remap_eligible() {
    let _io = io_quiet();
    let w = world(75);
    let dir = fresh_dir("reject");

    // Kill mid-solve in cycle 0: the durable state is a killed process
    // with a surviving solver checkpoint.
    let plan = ServicePlan {
        kill_mid_solve: vec![(0, 1)],
        ..ServicePlan::default()
    };
    let mut s = Service::resume_or_start(&w, config(75, dir.clone()), plan).unwrap();
    loop {
        match s.step().unwrap() {
            StepOutcome::SimulatedCrash { .. } => break,
            StepOutcome::Finished => panic!("kill never fired"),
            _ => {}
        }
    }
    drop(s);
    assert!(
        dir.join("solver.ckpt").exists(),
        "the kill must leave a checkpoint behind"
    );

    // Restart under a different per-cycle step budget: the solver
    // config token changes, so the checkpoint no longer validates. The
    // axes are intact though — the rejection must classify as
    // remap-eligible (not foreign), and the cycle re-solves cold.
    let mut cfg = config(75, dir);
    cfg.cycle_step_budget = Some(25);
    let mut s = Service::resume_or_start(&w, cfg, ServicePlan::default()).unwrap();
    let st = s.run().unwrap();
    let r0 = &st.records[0];
    assert!(
        r0.rejections
            .iter()
            .any(|m| m.starts_with("remap-eligible:")),
        "expected a remap-eligible rejection, got {:?}",
        r0.rejections
    );
    assert!(r0.recoveries.contains(&RecoveryAction::ColdSolve));
    assert!(
        r0.degraded.is_none(),
        "rejection must not degrade the cycle"
    );
    assert_ne!(r0.placement_fnv, 0);
}
