//! The supervised re-optimization pipeline.
//!
//! Operationally the paper's system re-solves the placement MIP on a
//! schedule (daily/weekly, Table VI). This module wraps one such
//! schedule in a crash-safe supervisor: each cycle runs the staged
//! pipeline **estimate → solve → round → validate → simulate**, every
//! stage transition is persisted atomically, the solve stage emits
//! resumable [`SolverCheckpoint`]s, and a stage that exhausts its
//! retry budget degrades the cycle to the *last-good* validated
//! placement instead of taking the service down.
//!
//! Determinism contract: the supervisor never reads a clock and never
//! sleeps. Retry backoff is computed from seeded jitter and *recorded*
//! in the cycle ledger (a deployment would sleep those amounts; tests
//! and benches must not). Together with the solver's checkpoint/resume
//! identity this makes an interrupted multi-cycle run reproduce the
//! uninterrupted run's placements bit for bit.

use std::path::PathBuf;
use vod_core::checkpoint::{
    fractional_from_value, fractional_to_value, CHECKPOINT_KIND, CHECKPOINT_VERSION,
};
use vod_core::rounding::round_solution;
use vod_core::{
    solve_fractional_checkpointed, solve_fractional_resumable, CheckpointSpec, DiskConfig,
    EpfConfig, MipInstance, Placement, PlacementCost, SolveError, SolverCheckpoint,
};
use vod_estimate::{estimate_demand, EstimateConfig, EstimatorKind};
use vod_json::snapshot::{
    fnv1a64, read_json_snapshot, read_snapshot, u64_bits_value, u64_from_bits_value,
    write_json_snapshot, write_snapshot_atomic, SnapshotError,
};
use vod_json::Value;
use vod_model::rng::derive_seed;
use vod_model::time::DAY;
use vod_model::{Catalog, Gigabytes, SimTime, TimeWindow, VhoId};
use vod_net::{Network, PathSet};
use vod_sim::{mip_vho_configs, simulate, CacheKind, PolicyKind, SimConfig};
use vod_trace::Trace;

use crate::state::{
    CycleRecord, DegradeReason, OpsError, PipelineState, SimSummary, StageId, FRACTIONAL_KIND,
    FRACTIONAL_VERSION, STATE_KIND, STATE_VERSION,
};
use crate::supervise::recorded_backoff;

/// The world the pipeline re-optimizes against: topology (with link
/// capacities already set), routing, library, the full request trace,
/// and the physical disk inventory. The one-shot pipeline treats it as
/// fixed; the service clones it and evolves its copy through
/// [`vod_net::WorldDelta`]s between cycles.
#[derive(Debug, Clone)]
pub struct OpsWorld {
    pub net: Network,
    pub paths: PathSet,
    pub catalog: Catalog,
    pub trace: Trace,
    /// Physical per-VHO disks handed to the simulator.
    pub disks: Vec<Gigabytes>,
    /// Disk budget the MIP solves against (typically the physical disk
    /// minus the complementary-cache share).
    pub mip_disk: DiskConfig,
    pub est: EstimateConfig,
}

/// Supervisor parameters.
#[derive(Debug, Clone)]
pub struct OpsConfig {
    /// Re-optimization cycles to run (clamped to the trace horizon).
    pub cycles: usize,
    /// Days covered by each cycle's placement (Table VI's schedule).
    pub period_days: u64,
    /// First day a placement takes effect; must be ≥ 7 so a full week
    /// of history exists for the estimator.
    pub start_day: u64,
    pub estimator: EstimatorKind,
    /// Solver configuration. `epf.seed` doubles as the pipeline master
    /// seed; prefer `step_limit` over `wall_limit` here — a wall clock
    /// budget breaks the bitwise resume-identity guarantee.
    pub epf: EpfConfig,
    /// Attempts per stage before the cycle degrades to last-good.
    pub max_attempts: u32,
    /// Solver checkpoint cadence in global passes (0 = no mid-solve
    /// checkpoints; crash recovery then restarts the solve stage).
    pub checkpoint_every: u64,
    /// Base of the recorded exponential retry backoff.
    pub backoff_base_ms: u64,
    /// Relative disk overrun tolerated by the validate stage.
    pub validate_tol: f64,
    /// Replay each cycle's period through the simulator.
    pub simulate: bool,
    /// Directory holding `pipeline.state`, `solver.ckpt` and
    /// `fractional.snap`.
    pub state_dir: PathBuf,
}

/// Deterministic fault injection for drills and tests: forced stage
/// failures and simulated mid-solve crashes.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(cycle, stage, attempt)` triples that fail with an injected
    /// error instead of running.
    pub fail: Vec<(usize, StageId, u32)>,
    /// `(cycle, keep_checkpoints)`: during that cycle's solve, stop
    /// persisting after `keep_checkpoints` checkpoint emissions and
    /// report a [`StepOutcome::SimulatedCrash`] — the durable state is
    /// then exactly what a process killed at that instant leaves
    /// behind. Fires at most once per cycle per [`Pipeline`] value.
    pub kill_mid_solve: Vec<(usize, u64)>,
}

/// What one [`Pipeline::step`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The current stage completed and the pipeline advanced.
    StageDone { cycle: usize, stage: StageId },
    /// The stage failed; the retry was scheduled with this much
    /// recorded backoff.
    AttemptFailed {
        cycle: usize,
        stage: StageId,
        attempt: u32,
        backoff_ms: u64,
    },
    /// A persisted inter-stage artifact was missing, corrupt or stale;
    /// the pipeline stepped back to the stage that regenerates it.
    Retreated { cycle: usize, stage: StageId },
    /// The cycle exhausted a stage's retries (or failed validation)
    /// and fell back to the last-good placement.
    CycleDegraded { cycle: usize },
    /// A [`FaultPlan`] kill fired mid-solve. The durable state is that
    /// of a killed process; stepping again (or constructing a fresh
    /// pipeline over the same state dir) resumes from the last
    /// surviving checkpoint.
    SimulatedCrash { cycle: usize },
    /// A scheduled [`vod_net::WorldDelta`] was applied (service only):
    /// the world mutated, the deployed placement was repaired under the
    /// churn cap, and the delta counter advanced — one durable
    /// transition. `index` is the delta's position in the schedule.
    DeltaApplied { cycle: usize, index: usize },
    /// All cycles are closed.
    Finished,
}

/// The crash-safe supervisor. Construct with [`Pipeline::resume_or_start`],
/// drive with [`Pipeline::step`] or [`Pipeline::run`].
pub struct Pipeline<'a> {
    world: &'a OpsWorld,
    cfg: OpsConfig,
    faults: FaultPlan,
    state: PipelineState,
    /// Kill faults already fired by *this* value (in-memory on
    /// purpose: a resumed process gets a fresh plan from its driver).
    fired_kills: Vec<usize>,
}

impl std::fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("cfg", &self.cfg)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl<'a> Pipeline<'a> {
    /// Load the durable state from `cfg.state_dir` and continue from
    /// it, or start fresh. A corrupt or truncated state file is a
    /// *cold restart* (counted in [`PipelineState::cold_restarts`]),
    /// never a panic; stale solver checkpoints and fractional
    /// snapshots are detected downstream and regenerate their stage.
    pub fn resume_or_start(
        world: &'a OpsWorld,
        cfg: OpsConfig,
        faults: FaultPlan,
    ) -> Result<Self, OpsError> {
        let invalid = |what: String| Err(OpsError::Invalid { what });
        if cfg.start_day < 7 {
            return invalid(format!(
                "start_day must be >= 7 (one week of history); got {}",
                cfg.start_day
            ));
        }
        if cfg.period_days == 0 || cfg.cycles == 0 {
            return invalid("period_days and cycles must be >= 1".into());
        }
        if cfg.max_attempts == 0 {
            return invalid("max_attempts must be >= 1".into());
        }
        if world.disks.len() != world.net.num_nodes() {
            return invalid(format!(
                "disk inventory has {} entries for {} VHOs",
                world.disks.len(),
                world.net.num_nodes()
            ));
        }
        if effective_cycles(world, &cfg) == 0 {
            return invalid(format!(
                "trace horizon ends before start_day {}: no cycle fits",
                cfg.start_day
            ));
        }
        std::fs::create_dir_all(&cfg.state_dir).map_err(|e| OpsError::Io {
            what: format!("create {}: {e}", cfg.state_dir.display()),
        })?;
        let path = cfg.state_dir.join("pipeline.state");
        let seed = cfg.epf.seed;
        let cold = || {
            let mut st = PipelineState::fresh(seed);
            st.cold_restarts = 1;
            st
        };
        let state = match read_json_snapshot(&path, STATE_KIND, STATE_VERSION) {
            Ok(v) => match PipelineState::from_value(&v) {
                Ok(mut st) if st.seed == seed => {
                    st.resumes += 1;
                    st
                }
                // A state written under a different seed is a
                // different experiment — refuse to clobber it.
                Ok(st) => {
                    return invalid(format!(
                        "state file {} belongs to seed {:#x}, config has {:#x}",
                        path.display(),
                        st.seed,
                        seed
                    ))
                }
                Err(_) => cold(),
            },
            Err(SnapshotError::Io { ref source, .. })
                if source.kind() == std::io::ErrorKind::NotFound =>
            {
                PipelineState::fresh(seed)
            }
            Err(_) => cold(),
        };
        let pipe = Self {
            world,
            cfg,
            faults,
            state,
            fired_kills: Vec::new(),
        };
        pipe.persist()?;
        Ok(pipe)
    }

    #[must_use]
    pub fn state(&self) -> &PipelineState {
        &self.state
    }

    /// Cycles that actually fit in the trace horizon.
    #[must_use]
    pub fn effective_cycles(&self) -> usize {
        effective_cycles(self.world, &self.cfg)
    }

    /// Drive the pipeline to completion. Simulated crashes resume
    /// in-process (the solve continues from its last surviving
    /// checkpoint); the only error exits are [`OpsError::NoFallback`]
    /// (a cycle degraded before any placement was ever validated) and
    /// a state directory that stops being writable.
    pub fn run(&mut self) -> Result<&PipelineState, OpsError> {
        while self.step()? != StepOutcome::Finished {}
        Ok(&self.state)
    }

    /// Execute one attempt of the current stage and persist the
    /// resulting state. Exactly one durable transition per call.
    pub fn step(&mut self) -> Result<StepOutcome, OpsError> {
        if self.state.cycle >= self.effective_cycles() {
            return Ok(StepOutcome::Finished);
        }
        let cycle = self.state.cycle;
        let stage = self.state.stage;
        self.state.cycle_attempts += 1;
        if self
            .faults
            .fail
            .contains(&(cycle, stage, self.state.attempts_done))
        {
            return self.fail_attempt(stage, "injected failure".into());
        }
        match stage {
            StageId::Estimate => self.step_estimate(cycle),
            StageId::Solve => self.step_solve(cycle),
            StageId::Round => self.step_round(cycle),
            StageId::Validate => self.step_validate(cycle),
            StageId::Simulate => self.step_simulate(cycle),
        }
    }

    // ---- stages -----------------------------------------------------

    fn step_estimate(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        // The demand estimate is a deterministic pure function of the
        // world and cycle, so nothing needs to be persisted here: the
        // solve stage re-derives it identically. This stage exists as
        // a supervision point (budget, injection) and as the cheap
        // up-front feasibility gate.
        let inst = self.instance_for(cycle);
        if inst.n_videos() == 0 {
            return self.fail_attempt(
                StageId::Estimate,
                "estimate produced an empty instance".into(),
            );
        }
        self.advance(StageId::Solve)?;
        Ok(StepOutcome::StageDone {
            cycle,
            stage: StageId::Estimate,
        })
    }

    fn step_solve(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        let inst = self.instance_for(cycle);
        let epf = self.epf_for_cycle(cycle);
        let ckpt_path = self.solver_ckpt_path();
        let kill_at = self
            .faults
            .kill_mid_solve
            .iter()
            .find(|(c, _)| *c == cycle && !self.fired_kills.contains(c))
            .map(|&(_, keep)| keep);
        let prior = match read_snapshot(&ckpt_path, CHECKPOINT_KIND, CHECKPOINT_VERSION) {
            Ok(bytes) => SolverCheckpoint::from_bytes(&bytes).ok(),
            // Missing, truncated or checksum-corrupt checkpoint: the
            // solve simply restarts cold. Durability lost, not
            // correctness.
            Err(_) => None,
        };
        let mut emitted: u64 = 0;
        let mut killed = false;
        let every = self.cfg.checkpoint_every;
        let mut sink = |ck: SolverCheckpoint| {
            if killed {
                return;
            }
            if kill_at.is_some_and(|keep| emitted >= keep) {
                // From here on the "process" is dead: no further
                // durable writes survive.
                killed = true;
                return;
            }
            emitted += 1;
            // A failed checkpoint write degrades crash recovery (the
            // resume point stays older) but never correctness, so it
            // is deliberately not a solve failure.
            let _ = write_snapshot_atomic(
                &ckpt_path,
                CHECKPOINT_KIND,
                CHECKPOINT_VERSION,
                &ck.to_bytes(),
            );
        };
        let warm_owned = self.state.last_good.as_ref().map(|(_, p)| p.clone());
        let mut used_resume = false;
        let result = match &prior {
            Some(ck) => match solve_fractional_resumable(
                &inst,
                &epf,
                ck,
                Some(CheckpointSpec {
                    every,
                    sink: &mut sink,
                }),
            ) {
                // A checkpoint from another cycle/config: discard and
                // solve cold. Typed, expected, no retry burned.
                Err(SolveError::MismatchedCheckpoint { .. }) => {
                    let _ = std::fs::remove_file(&ckpt_path);
                    solve_fractional_checkpointed(
                        &inst,
                        &epf,
                        warm_owned.as_ref(),
                        CheckpointSpec {
                            every,
                            sink: &mut sink,
                        },
                    )
                }
                other => {
                    used_resume = true;
                    other
                }
            },
            None => solve_fractional_checkpointed(
                &inst,
                &epf,
                warm_owned.as_ref(),
                CheckpointSpec {
                    every,
                    sink: &mut sink,
                },
            ),
        };
        if used_resume {
            self.state.cycle_solver_resumes += 1;
        }
        match result {
            Ok((frac, _stats)) => {
                if killed {
                    // Nothing after the last surviving checkpoint is
                    // persisted — including this (discarded) result.
                    self.fired_kills.push(cycle);
                    return Ok(StepOutcome::SimulatedCrash { cycle });
                }
                let payload = Value::Obj(vec![
                    ("cycle".into(), Value::Num(cycle as f64)),
                    ("config".into(), u64_bits_value(self.epf_token(cycle))),
                    ("fractional".into(), fractional_to_value(&frac)),
                ]);
                write_json_snapshot(
                    &self.fractional_path(),
                    FRACTIONAL_KIND,
                    FRACTIONAL_VERSION,
                    &payload,
                )
                .map_err(|e| OpsError::Io {
                    what: format!("persist fractional: {e}"),
                })?;
                let _ = std::fs::remove_file(&ckpt_path);
                self.advance(StageId::Round)?;
                Ok(StepOutcome::StageDone {
                    cycle,
                    stage: StageId::Solve,
                })
            }
            Err(e) => self.fail_attempt(StageId::Solve, e.to_string()),
        }
    }

    fn step_round(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        let inst = self.instance_for(cycle);
        let token = self.epf_token(cycle);
        let frac = read_json_snapshot(&self.fractional_path(), FRACTIONAL_KIND, FRACTIONAL_VERSION)
            .ok()
            .and_then(|v| {
                let same_cycle = v.get("cycle")?.as_usize()? == cycle;
                let same_cfg = u64_from_bits_value(v.get("config")?, "config").ok()? == token;
                if !(same_cycle && same_cfg) {
                    return None;
                }
                fractional_from_value(v.get("fractional")?, &inst).ok()
            });
        let Some(frac) = frac else {
            // The solve→round artifact is missing, corrupt, or from a
            // different cycle/config: step back and regenerate it.
            let _ = std::fs::remove_file(self.fractional_path());
            return self.retreat(StageId::Solve, StageId::Round, cycle);
        };
        let (placement, stats) =
            round_solution(&inst, &frac, self.cfg.epf.gamma, self.cfg.epf.kernel);
        self.state.pending = Some(placement);
        self.state.pending_objective = Some(stats.objective);
        self.advance(StageId::Validate)?;
        Ok(StepOutcome::StageDone {
            cycle,
            stage: StageId::Round,
        })
    }

    fn step_validate(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        let Some(p) = self.state.pending.clone() else {
            return self.retreat(StageId::Round, StageId::Validate, cycle);
        };
        let inst = self.instance_for(cycle);
        if let Err(what) = serviceable(&p, &inst, self.cfg.validate_tol) {
            return self.degrade(DegradeReason::ValidationFailed { what });
        }
        self.state.pending_migrated = self
            .state
            .last_good
            .as_ref()
            .map_or(0, |(_, prev)| p.migration_copies_from(prev));
        self.state.last_good = Some((cycle, p));
        self.advance(StageId::Simulate)?;
        Ok(StepOutcome::StageDone {
            cycle,
            stage: StageId::Validate,
        })
    }

    fn step_simulate(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        if self.cfg.simulate {
            let Some(p) = self.state.pending.clone() else {
                return self.retreat(StageId::Round, StageId::Simulate, cycle);
            };
            let (day, end) = self.window_of(cycle);
            let future = self.world.trace.restricted(TimeWindow::new(
                SimTime::new(day * DAY),
                SimTime::new(end * DAY),
            ));
            let vhos = mip_vho_configs(&p, &self.world.disks, 0.0, CacheKind::Lru);
            let policy = PolicyKind::MipRouting(p);
            let rep = simulate(
                &self.world.net,
                &self.world.paths,
                &self.world.catalog,
                &future,
                &vhos,
                &policy,
                &SimConfig {
                    seed: derive_seed(self.state.seed, 0x51A1 ^ cycle as u64),
                    insert_on_miss: false,
                    ..SimConfig::default()
                },
            );
            let local = rep.served_local_pinned + rep.served_local_cached;
            self.state.pending_sim = Some(SimSummary {
                max_gbps: rep.max_link_mbps / 1000.0,
                local_frac: local as f64 / rep.total_requests.max(1) as f64,
                total_requests: rep.total_requests,
            });
        }
        let fnv = self
            .state
            .last_good
            .as_ref()
            .map_or(0, |(_, p)| PipelineState::placement_fingerprint(p));
        self.state.records.push(CycleRecord {
            cycle,
            degraded: None,
            attempts: self.state.cycle_attempts,
            backoff_ms: self.state.cycle_backoff_ms,
            solver_resumes: self.state.cycle_solver_resumes,
            placement_fnv: fnv,
            objective: self.state.pending_objective,
            migrated: self.state.pending_migrated,
            sim: self.state.pending_sim.clone(),
        });
        self.close_cycle()?;
        Ok(StepOutcome::StageDone {
            cycle,
            stage: StageId::Simulate,
        })
    }

    // ---- supervision ------------------------------------------------

    fn fail_attempt(&mut self, stage: StageId, err: String) -> Result<StepOutcome, OpsError> {
        let cycle = self.state.cycle;
        let attempt = self.state.attempts_done;
        self.state.attempts_done += 1;
        let backoff = self.backoff_increment(cycle, stage, attempt);
        self.state.cycle_backoff_ms += backoff;
        if self.state.attempts_done >= self.cfg.max_attempts {
            return self.degrade(DegradeReason::StageFailed {
                stage,
                attempts: self.state.attempts_done,
                last_error: err,
            });
        }
        self.persist()?;
        Ok(StepOutcome::AttemptFailed {
            cycle,
            stage,
            attempt,
            backoff_ms: backoff,
        })
    }

    /// Close the cycle on the last-good placement. With no last-good
    /// yet there is nothing serviceable to offer — the pipeline stops
    /// with a typed error and its durable state intact for diagnosis.
    fn degrade(&mut self, reason: DegradeReason) -> Result<StepOutcome, OpsError> {
        let cycle = self.state.cycle;
        let Some((_, good)) = &self.state.last_good else {
            return Err(OpsError::NoFallback { cycle, reason });
        };
        let fnv = PipelineState::placement_fingerprint(good);
        self.state.records.push(CycleRecord {
            cycle,
            degraded: Some(reason),
            attempts: self.state.cycle_attempts,
            backoff_ms: self.state.cycle_backoff_ms,
            solver_resumes: self.state.cycle_solver_resumes,
            placement_fnv: fnv,
            objective: None,
            migrated: 0,
            sim: None,
        });
        self.close_cycle()?;
        Ok(StepOutcome::CycleDegraded { cycle })
    }

    fn retreat(
        &mut self,
        to: StageId,
        from: StageId,
        cycle: usize,
    ) -> Result<StepOutcome, OpsError> {
        self.state.stage = to;
        self.state.attempts_done = 0;
        self.persist()?;
        Ok(StepOutcome::Retreated { cycle, stage: from })
    }

    fn advance(&mut self, next: StageId) -> Result<(), OpsError> {
        self.state.stage = next;
        self.state.attempts_done = 0;
        self.persist()
    }

    fn close_cycle(&mut self) -> Result<(), OpsError> {
        self.state.pending = None;
        self.state.pending_objective = None;
        self.state.pending_migrated = 0;
        self.state.pending_sim = None;
        self.state.attempts_done = 0;
        self.state.cycle_attempts = 0;
        self.state.cycle_backoff_ms = 0;
        self.state.cycle_solver_resumes = 0;
        self.state.cycle += 1;
        self.state.stage = StageId::Estimate;
        let _ = std::fs::remove_file(self.solver_ckpt_path());
        let _ = std::fs::remove_file(self.fractional_path());
        self.persist()
    }

    fn persist(&self) -> Result<(), OpsError> {
        write_json_snapshot(
            &self.cfg.state_dir.join("pipeline.state"),
            STATE_KIND,
            STATE_VERSION,
            &self.state.to_value(),
        )
        .map_err(|e| OpsError::Io {
            what: format!("persist pipeline state: {e}"),
        })
    }

    /// Recorded exponential backoff with deterministic seeded jitter.
    /// Never slept — see [`crate::supervise::recorded_backoff`].
    fn backoff_increment(&self, cycle: usize, stage: StageId, attempt: u32) -> u64 {
        recorded_backoff(
            self.state.seed,
            cycle,
            stage,
            attempt,
            self.cfg.backoff_base_ms,
        )
    }

    // ---- deterministic inputs --------------------------------------

    fn window_of(&self, cycle: usize) -> (u64, u64) {
        let horizon = self.world.trace.horizon().secs() / DAY;
        let day = self.cfg.start_day + cycle as u64 * self.cfg.period_days;
        (day, (day + self.cfg.period_days).min(horizon))
    }

    /// Rebuild the cycle's MIP instance. Pure function of the world,
    /// the cycle index and the last-good placement (the migration
    /// anchor), so every attempt and every resumed process sees the
    /// identical instance.
    fn instance_for(&self, cycle: usize) -> MipInstance {
        let (day, end) = self.window_of(cycle);
        let history = self.world.trace.restricted(TimeWindow::new(
            SimTime::new((day - 7) * DAY),
            SimTime::new(day * DAY),
        ));
        let future = self.world.trace.restricted(TimeWindow::new(
            SimTime::new(day * DAY),
            SimTime::new(end * DAY),
        ));
        let demand = estimate_demand(
            self.cfg.estimator,
            &self.world.catalog,
            self.world.net.num_nodes(),
            &history,
            &future,
            day,
            end - day,
            &self.world.est,
        );
        let pc = self.state.last_good.as_ref().map(|(_, p)| PlacementCost {
            weight: 1.0,
            previous: Some(p.holder_lists()),
            // lint:allow(raw-index): update transfers are anchored at VHO 0 by convention
            origin: VhoId::new(0),
        });
        MipInstance::new(
            self.world.net.clone(),
            self.world.catalog.clone(),
            demand,
            &self.world.mip_disk,
            1.0,
            0.0,
            pc.as_ref(),
        )
    }

    /// Per-cycle solver config: the seed is derived per cycle so
    /// checkpoints from different cycles can never cross-validate.
    fn epf_for_cycle(&self, cycle: usize) -> EpfConfig {
        EpfConfig {
            seed: derive_seed(self.cfg.epf.seed, 0x0E5F ^ cycle as u64),
            ..self.cfg.epf.clone()
        }
    }

    /// Config token stored with the fractional snapshot so a solve
    /// artifact from a different solver configuration is rejected at
    /// the round stage instead of silently reused.
    fn epf_token(&self, cycle: usize) -> u64 {
        epf_config_token(&self.epf_for_cycle(cycle))
    }

    fn solver_ckpt_path(&self) -> PathBuf {
        self.cfg.state_dir.join("solver.ckpt")
    }

    fn fractional_path(&self) -> PathBuf {
        self.cfg.state_dir.join("fractional.snap")
    }
}

/// Fingerprint of everything that shapes a solve trajectory, so a
/// persisted fractional artifact from a different solver configuration
/// is rejected instead of silently reused (shared by both
/// supervisors).
pub(crate) fn epf_config_token(e: &EpfConfig) -> u64 {
    let mut buf = Vec::with_capacity(96);
    for bits in [
        e.epsilon.to_bits(),
        e.gamma.to_bits(),
        e.rho.to_bits(),
        e.chunk_size as u64,
        e.max_passes as u64,
        e.lb_every as u64,
        e.polish_iters as u64,
        e.seed,
        u64::from(e.feasibility_only),
        e.step_limit.unwrap_or(u64::MAX),
    ] {
        buf.extend_from_slice(&bits.to_le_bytes());
    }
    fnv1a64(&buf)
}

/// Structural serviceability of a rounded placement: right shape,
/// every video has a holder, disks within tolerance. Deliberately
/// *not* the audit layer's link checks — an over-tight link budget
/// yields a degraded-but-serviceable placement, which the supervisor
/// must keep, not reject.
pub(crate) fn serviceable(p: &Placement, inst: &MipInstance, tol: f64) -> Result<(), String> {
    if p.n_vhos() != inst.n_vhos() {
        return Err(format!(
            "placement has {} VHOs, instance has {}",
            p.n_vhos(),
            inst.n_vhos()
        ));
    }
    let holders = p.holder_lists();
    if holders.len() != inst.n_videos() {
        return Err(format!(
            "placement covers {} videos, instance has {}",
            holders.len(),
            inst.n_videos()
        ));
    }
    if let Some(m) = holders.iter().position(Vec::is_empty) {
        return Err(format!("video {m} has no holder"));
    }
    let usage = p.disk_usage(&inst.catalog);
    for (i, (&have, used)) in inst.disks.iter().zip(usage).enumerate() {
        if used.value() > have.value() * (1.0 + tol) {
            return Err(format!(
                "VHO {i} stores {:.1} GB on a {:.1} GB budget (tol {tol})",
                used.value(),
                have.value()
            ));
        }
    }
    Ok(())
}

pub(crate) fn effective_cycles(world: &OpsWorld, cfg: &OpsConfig) -> usize {
    let horizon = world.trace.horizon().secs() / DAY;
    let mut n = 0usize;
    while n < cfg.cycles && cfg.start_day + n as u64 * cfg.period_days < horizon {
        n += 1;
    }
    n
}
