//! Supervision primitives shared by the one-shot pipeline and the
//! long-running service loop: the recorded-backoff formula, the
//! deterministic cycle watchdog, and the graceful-degradation ladder's
//! typed recovery actions.
//!
//! Determinism contract: supervisors never read a clock and never
//! sleep. Backoff is *computed* from seeded jitter and recorded in the
//! cycle ledger; the cycle watchdog counts supervision ticks, not
//! seconds. The only sanctioned real sleep in the workspace is
//! [`deployment_sleep`] below — the `sleep-timer` lint pins every
//! other `thread::sleep`/timer read as a finding.

use crate::state::StageId;
use vod_model::rng::derive_seed;

/// Recorded exponential backoff with deterministic seeded jitter: the
/// single formula both supervisors use, so the service and the
/// pipeline schedule byte-identical retry delays for the same
/// `(seed, cycle, stage, attempt)` coordinate. Never slept in tests or
/// benches — a deployment passes the returned amount to
/// [`deployment_sleep`].
#[must_use]
pub fn recorded_backoff(
    seed: u64,
    cycle: usize,
    stage: StageId,
    attempt: u32,
    base_ms: u64,
) -> u64 {
    let base = base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(16));
    let mix = ((cycle as u64) << 16) ^ ((stage as u64) << 8) ^ u64::from(attempt) ^ 0xBAC0_FF00;
    exp + derive_seed(seed, mix) % base
}

/// Which rung of the graceful-degradation ladder a cycle landed on.
/// Ordered from least to most degraded; a cycle may record several
/// (e.g. a warm resume that still ends in a last-good fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// A mid-solve checkpoint was validated and resumed.
    WarmResume,
    /// Warm state survived a world delta: the solver state was remapped
    /// onto the reconfigured instance instead of cold-solving
    /// ([`vod_core::remap`]). Capacity-only deltas land here.
    WarmRemap,
    /// A stale/foreign checkpoint was discarded; the solve restarted
    /// cold, seeded from the deployed placement.
    ColdSolve,
    /// The cycle failed to produce a fresh placement; the previous
    /// deployment keeps serving.
    LastGood,
    /// No deployment exists at all: the window's demand is served
    /// stale (denied and accounted), never dropped on the floor.
    StaleServe,
}

impl RecoveryAction {
    pub const ALL: [RecoveryAction; 5] = [
        RecoveryAction::WarmResume,
        RecoveryAction::WarmRemap,
        RecoveryAction::ColdSolve,
        RecoveryAction::LastGood,
        RecoveryAction::StaleServe,
    ];

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecoveryAction::WarmResume => "warm-resume",
            RecoveryAction::WarmRemap => "warm-remap",
            RecoveryAction::ColdSolve => "cold-solve",
            RecoveryAction::LastGood => "last-good",
            RecoveryAction::StaleServe => "stale-serve",
        }
    }

    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|a| a.name() == s)
    }
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic stall detector. A wall-clock watchdog would break the
/// bitwise resume-identity contract, so this one counts *supervision
/// ticks* — one per `step` call — against a per-cycle budget. A cycle
/// that cannot close within its budget (retry ping-pong, artifact
/// regeneration loops) is declared stalled and degraded with a typed
/// [`crate::DegradeReason::Stalled`], instead of spinning forever.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    budget: u64,
    ticks: u64,
}

impl Watchdog {
    /// `budget` = supervision ticks one cycle may burn. A healthy
    /// cycle needs one per stage; size it at
    /// `stages * max_attempts + slack`.
    #[must_use]
    pub fn new(budget: u64) -> Self {
        Self {
            budget: budget.max(1),
            ticks: 0,
        }
    }

    /// Count one supervision tick; `true` means the budget is now
    /// exhausted and the cycle must degrade.
    pub fn tick(&mut self) -> bool {
        self.ticks = self.ticks.saturating_add(1);
        self.ticks >= self.budget
    }

    /// A new cycle starts with a fresh budget.
    pub fn reset(&mut self) {
        self.ticks = 0;
    }

    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// The one sanctioned real sleep: an operational deployment calls this
/// with the recorded backoff amounts from the cycle ledger. Kept here
/// so the `sleep-timer` lint has exactly one allowed home for
/// `thread::sleep` — everywhere else in the workspace a sleep or timer
/// read is a determinism finding.
pub fn deployment_sleep(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let a = recorded_backoff(42, 1, StageId::Solve, 0, 250);
        let b = recorded_backoff(42, 1, StageId::Solve, 0, 250);
        assert_eq!(a, b);
        // Exponential envelope: attempt k's floor doubles.
        for k in 0..5 {
            let lo = recorded_backoff(42, 1, StageId::Solve, k, 250);
            assert!(lo >= 250u64 << k, "attempt {k}: {lo}");
            assert!(lo < (250u64 << k) + 2 * 250, "attempt {k}: {lo}");
        }
        // Different coordinates jitter differently (not a constant).
        let across: Vec<u64> = (0..8)
            .map(|c| recorded_backoff(42, c, StageId::Round, 0, 250))
            .collect();
        assert!(across.windows(2).any(|w| w[0] != w[1]), "{across:?}");
    }

    #[test]
    fn extreme_attempts_cap_the_exponent() {
        // attempt is clamped at 2^16 so huge retry counts cannot
        // overflow the envelope.
        let v = recorded_backoff(7, 1_000_000, StageId::Simulate, u32::MAX, 1_000);
        assert!(v >= 1_000u64 << 16);
        assert!(v < (1_000u64 << 16) + 2_000);
    }

    #[test]
    fn watchdog_trips_exactly_at_budget() {
        let mut w = Watchdog::new(3);
        assert!(!w.tick());
        assert!(!w.tick());
        assert!(w.tick());
        assert_eq!(w.ticks(), 3);
        w.reset();
        assert_eq!(w.ticks(), 0);
        assert!(!w.tick());
        // Zero budgets clamp to 1: every first tick trips.
        let mut z = Watchdog::new(0);
        assert!(z.tick());
    }

    #[test]
    fn recovery_action_names_round_trip() {
        for a in RecoveryAction::ALL {
            assert_eq!(RecoveryAction::from_name(a.name()), Some(a));
        }
        assert_eq!(RecoveryAction::from_name("bogus"), None);
    }
}
