//! Migration-cost-aware placement diffs with a per-cycle churn cap.
//!
//! Between service cycles the solver may want to move many copies at
//! once (a demand shift, a recovered VHO). Pushing them all in one
//! update window floods the distribution network — the cooperative-
//! caching literature bounds per-epoch churn for exactly this reason —
//! so the service deploys a *hybrid* placement instead: videos whose
//! target layout fits under the remaining cap adopt it wholesale
//! (stores and routing together, so per-video routing always matches
//! its holders); a video too large for what is left of the cap has as
//! many of its missing copies *staged* as the budget allows (added to
//! its store list while the previous layout keeps serving), and the
//! remainder is queued as a typed [`DeferredMigration`]. Deferred
//! videos are retried oldest-first every cycle, and staging guarantees
//! `min(cap, remaining)` copies of progress per cycle — the queue
//! provably drains; no video can starve behind a cap smaller than its
//! own transfer cost.
//!
//! Cost model matches [`Placement::migration_copies_from`]: a copy
//! *added* relative to the previous placement costs 1 (it must be
//! transferred); deletions and pure routing changes are free.
//!
//! The hybrid may transiently exceed a VHO's disk budget: a copy being
//! added elsewhere is not yet deleted here (migration-window double
//! occupancy). The strict serviceability gate applies to the *target*;
//! the hybrid only has to be structurally valid, which
//! [`Placement::from_parts`] enforces.

use vod_core::Placement;
use vod_json::Value;
use vod_model::VideoId;

/// One postponed migration: `video` still needs `copies` transfers to
/// reach its target layout, queued since `since_cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferredMigration {
    pub video: VideoId,
    pub copies: usize,
    pub since_cycle: usize,
}

impl DeferredMigration {
    pub(crate) fn to_value(self) -> Value {
        Value::Obj(vec![
            ("video".into(), Value::Num(self.video.index() as f64)),
            ("copies".into(), Value::Num(self.copies as f64)),
            ("since_cycle".into(), Value::Num(self.since_cycle as f64)),
        ])
    }

    pub(crate) fn from_value(v: &Value) -> Result<Self, String> {
        let u = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Value::as_usize)
                .ok_or_else(|| format!("deferred.{key}: expected an int"))
        };
        let m = u("video")?;
        let raw =
            u32::try_from(m).map_err(|_| format!("deferred.video: index {m} overflows u32"))?;
        Ok(Self {
            video: VideoId::new(raw),
            copies: u("copies")?,
            since_cycle: u("since_cycle")?,
        })
    }
}

/// Result of applying the churn cap to one cycle's target placement.
#[derive(Debug, Clone)]
pub struct ChurnPlan {
    /// The deployable hybrid: adopted videos at their target layout,
    /// deferred videos at their previous one.
    pub placement: Placement,
    /// Copies actually moved (added) this cycle; `<= cap` always.
    pub moved: usize,
    /// The deferred queue after this cycle, oldest first.
    pub deferred: Vec<DeferredMigration>,
}

/// Diff `target` against the currently-deployed `prev` and adopt as
/// much of it as the churn `cap` allows. `cap = None` adopts
/// everything. `deferred_in` is the queue from the previous cycle:
/// its videos are retried first (oldest `since_cycle`, then video id),
/// so persistent cap pressure drains in arrival order; a deferred
/// video whose target no longer differs from `prev` simply leaves the
/// queue. Fresh differing videos follow in video-id order. A video
/// whose remaining transfer cost exceeds what is left of the cap is
/// *partially staged*: the affordable prefix of its missing copies is
/// added to its store list (the previous layout keeps serving), and a
/// [`DeferredMigration`] records the rest — deterministic, order-fixed
/// and starvation-free.
pub fn apply_churn_cap(
    prev: &Placement,
    target: &Placement,
    cap: Option<usize>,
    deferred_in: &[DeferredMigration],
    cycle: usize,
) -> Result<ChurnPlan, String> {
    // The VHO axis must match exactly; the video axis may *grow*
    // (append-only catalog deltas): `prev` is padded with virtual
    // empty entries for the appended tail. A `prev` longer than the
    // target is a genuine mismatch.
    if prev.n_vhos() != target.n_vhos() || prev.n_videos() > target.n_videos() {
        return Err(format!(
            "placement shape mismatch: prev {}v/{}m vs target {}v/{}m",
            prev.n_vhos(),
            prev.n_videos(),
            target.n_vhos(),
            target.n_videos()
        ));
    }
    let n_videos = target.n_videos();
    const EMPTY_STORES: &[vod_model::VhoId] = &[];
    const EMPTY_ROUTING: &[(vod_model::VhoId, vod_core::solution::ServingDist)] = &[];
    let prev_stores = |m: VideoId| -> &[vod_model::VhoId] {
        if m.index() < prev.n_videos() {
            prev.stores(m)
        } else {
            EMPTY_STORES
        }
    };
    // Queue position of each previously-deferred video.
    let mut order: Vec<(usize, VideoId)> = Vec::with_capacity(n_videos);
    let mut queued = vec![false; n_videos];
    let mut since = vec![usize::MAX; n_videos];
    for d in deferred_in {
        let i = d.video.index();
        if i < n_videos && !queued[i] {
            queued[i] = true;
            since[i] = d.since_cycle;
            order.push((d.since_cycle, d.video));
        }
    }
    order.sort(); // oldest deferral first, then video id
    for (m, &q) in queued.iter().enumerate() {
        if !q {
            order.push((cycle, VideoId::from_index(m)));
        }
    }

    let prev_routing = prev.routing_lists();
    let target_routing = target.routing_lists();
    let prev_routing_of = |i: usize| -> &[(vod_model::VhoId, vod_core::solution::ServingDist)] {
        prev_routing.get(i).map_or(EMPTY_ROUTING, Vec::as_slice)
    };
    let mut moved = 0usize;
    let mut deferred = Vec::new();
    let mut stores_out: Vec<Vec<_>> = (0..n_videos)
        .map(|m| prev_stores(VideoId::from_index(m)).to_vec())
        .collect();
    let mut routing_out: Vec<Vec<_>> = (0..n_videos).map(|i| prev_routing_of(i).to_vec()).collect();
    for &(queued_since, m) in &order {
        let i = m.index();
        if prev_stores(m) == target.stores(m) && prev_routing_of(i) == target_routing[i] {
            continue; // identical layouts: nothing to do
        }
        // Transfer cost: target holders not already on prev. The
        // *first* copy of a brand-new (appended) video is free — it is
        // content ingest, not placement churn, and structural validity
        // requires every video to hold at least one copy.
        let missing: Vec<_> = target
            .stores(m)
            .iter()
            .filter(|v| prev_stores(m).binary_search(v).is_err())
            .copied()
            .collect();
        let free_copies = usize::from(i >= prev.n_videos());
        let cost = missing.len().saturating_sub(free_copies);
        // Saturating clamp: the cap may have been *lowered* between
        // cycles (even to 0) while repair pre-charges or a drain is in
        // flight; the budget must floor at 0, never wrap.
        let budget = cap.map_or(usize::MAX, |c| c.saturating_sub(moved));
        if cost <= budget {
            // Full adoption: target stores and routing together.
            stores_out[i] = target.stores(m).to_vec();
            routing_out[i] = target_routing[i].clone();
            moved += cost;
        } else {
            let stage = budget + free_copies; // paid prefix + free first copy
            if stage > 0 {
                // Partial staging: transfer the affordable prefix of
                // the missing copies now; the previous layout (and its
                // routing) keeps serving until full adoption.
                stores_out[i].extend_from_slice(&missing[..stage.min(missing.len())]);
                stores_out[i].sort_unstable();
                moved += budget;
            }
            deferred.push(DeferredMigration {
                video: m,
                copies: missing.len() - stage.min(missing.len()),
                since_cycle: queued_since,
            });
        }
    }
    deferred.sort_by_key(|d| (d.since_cycle, d.video));

    let placement = Placement::from_parts(target.n_vhos(), stores_out, routing_out)
        .map_err(|e| format!("hybrid placement invalid: {e}"))?;
    Ok(ChurnPlan {
        placement,
        moved,
        deferred,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::VhoId;

    /// Tiny hand-built placements over `n` videos and 4 VHOs; video m
    /// is held by the VHOs listed, with one client routed to the first
    /// holder.
    fn placement(holders: Vec<Vec<u16>>) -> Placement {
        let stores: Vec<Vec<VhoId>> = holders
            .iter()
            .map(|hs| hs.iter().map(|&v| VhoId::new(v)).collect())
            .collect();
        let routing = holders
            .iter()
            .map(|hs| vec![(VhoId::new(3), vec![(VhoId::new(hs[0]), 1.0)])])
            .collect();
        Placement::from_parts(4, stores, routing).unwrap()
    }

    #[test]
    fn uncapped_adopts_the_target_wholesale() {
        let prev = placement(vec![vec![0], vec![1], vec![2]]);
        let target = placement(vec![vec![1], vec![1, 2], vec![2]]);
        let plan = apply_churn_cap(&prev, &target, None, &[], 5).unwrap();
        assert_eq!(plan.moved, 2); // video 0: +v1, video 1: +v2
        assert!(plan.deferred.is_empty());
        assert_eq!(
            plan.placement.holder_lists(),
            target.holder_lists(),
            "uncapped hybrid must equal the target"
        );
        assert_eq!(plan.moved, target.migration_copies_from(&prev));
    }

    #[test]
    fn cap_defers_excess_and_the_queue_drains_oldest_first() {
        let prev = placement(vec![vec![0], vec![0], vec![0]]);
        let target = placement(vec![vec![1], vec![2], vec![3]]);
        // Cycle 0, cap 1: exactly one video moves, two defer.
        let p0 = apply_churn_cap(&prev, &target, Some(1), &[], 0).unwrap();
        assert_eq!(p0.moved, 1);
        assert_eq!(p0.deferred.len(), 2);
        assert!(p0.deferred.iter().all(|d| d.since_cycle == 0));
        // Cycle 1: deferred videos retry first and drain in order.
        let p1 = apply_churn_cap(&p0.placement, &target, Some(1), &p0.deferred, 1).unwrap();
        assert_eq!(p1.moved, 1);
        assert_eq!(p1.deferred.len(), 1);
        assert_eq!(p1.deferred[0].video, p0.deferred[1].video);
        assert_eq!(p1.deferred[0].since_cycle, 0, "re-deferral keeps age");
        // Cycle 2: fully drained, hybrid converges to the target.
        let p2 = apply_churn_cap(&p1.placement, &target, Some(1), &p1.deferred, 2).unwrap();
        assert_eq!(p2.moved, 1);
        assert!(p2.deferred.is_empty());
        assert_eq!(p2.placement.holder_lists(), target.holder_lists());
    }

    #[test]
    fn cap_is_never_exceeded_and_oversized_videos_stage_partially() {
        let prev = placement(vec![vec![0], vec![0], vec![0]]);
        // Video 0 needs 3 transfers, videos 1 and 2 need 1 each.
        let target = placement(vec![vec![1, 2, 3], vec![1], vec![2]]);
        let plan = apply_churn_cap(&prev, &target, Some(2), &[], 4).unwrap();
        assert_eq!(plan.moved, 2, "cap must be used in full, never exceeded");
        // The oversized first video absorbs the whole budget as staged
        // copies; its old layout keeps serving and the rest defers.
        assert_eq!(
            plan.placement.stores(VideoId::new(0)),
            &[VhoId::new(0), VhoId::new(1), VhoId::new(2)]
        );
        assert_eq!(
            plan.deferred,
            vec![
                DeferredMigration {
                    video: VideoId::new(0),
                    copies: 1,
                    since_cycle: 4
                },
                DeferredMigration {
                    video: VideoId::new(1),
                    copies: 1,
                    since_cycle: 4
                },
                DeferredMigration {
                    video: VideoId::new(2),
                    copies: 1,
                    since_cycle: 4
                },
            ]
        );
        // Videos past the budget keep their previous layout untouched.
        assert_eq!(
            plan.placement.stores(VideoId::new(1)),
            prev.stores(VideoId::new(1))
        );
    }

    #[test]
    fn a_video_larger_than_the_cap_cannot_starve() {
        // Regression: with whole-video adoption only, a 3-copy video
        // under cap 1 would be re-deferred forever. Partial staging
        // must land it in exactly ceil(3/1) rounds.
        let mut current = placement(vec![vec![0]]);
        let target = placement(vec![vec![1, 2, 3]]);
        let mut deferred = Vec::new();
        for round in 0..3 {
            let plan = apply_churn_cap(&current, &target, Some(1), &deferred, round).unwrap();
            assert_eq!(plan.moved, 1, "round {round} must make progress");
            current = plan.placement;
            deferred = plan.deferred;
        }
        assert!(deferred.is_empty());
        assert_eq!(current.holder_lists(), target.holder_lists());
    }

    #[test]
    fn cap_lowered_mid_drain_keeps_guaranteed_progress() {
        // Drain starts under cap 3, then the operator lowers the cap
        // to 1 mid-drain: every later cycle must still move exactly
        // min(cap, remaining) copies — never wrap, never stall.
        let prev = placement(vec![vec![0], vec![0], vec![0]]);
        let target = placement(vec![vec![1, 2, 3], vec![1], vec![2]]);
        let p0 = apply_churn_cap(&prev, &target, Some(3), &[], 0).unwrap();
        assert_eq!(p0.moved, 3);
        assert!(!p0.deferred.is_empty());
        let mut current = p0.placement;
        let mut deferred = p0.deferred;
        let mut cycle = 1;
        while !deferred.is_empty() {
            let p = apply_churn_cap(&current, &target, Some(1), &deferred, cycle).unwrap();
            assert_eq!(
                p.moved, 1,
                "cycle {cycle} must make progress under the lowered cap"
            );
            current = p.placement;
            deferred = p.deferred;
            cycle += 1;
            assert!(cycle < 10, "drain must terminate");
        }
        assert_eq!(current.holder_lists(), target.holder_lists());
    }

    #[test]
    fn cap_dropped_to_zero_freezes_the_queue_and_restoration_drains_it() {
        let prev = placement(vec![vec![0], vec![0]]);
        let target = placement(vec![vec![1], vec![2]]);
        let p0 = apply_churn_cap(&prev, &target, Some(1), &[], 0).unwrap();
        assert_eq!(p0.moved, 1);
        assert_eq!(p0.deferred.len(), 1);
        // Cap collapses to 0: no progress, no wrap, queue intact with
        // its original age.
        let frozen = apply_churn_cap(&p0.placement, &target, Some(0), &p0.deferred, 1).unwrap();
        assert_eq!(frozen.moved, 0);
        assert_eq!(
            frozen.deferred, p0.deferred,
            "queue must survive a zero cap"
        );
        assert_eq!(
            frozen.placement.holder_lists(),
            p0.placement.holder_lists(),
            "zero cap must not alter the deployment"
        );
        // Cap restored: the queue drains where it left off.
        let done =
            apply_churn_cap(&frozen.placement, &target, Some(2), &frozen.deferred, 2).unwrap();
        assert_eq!(done.moved, 1);
        assert!(done.deferred.is_empty());
        assert_eq!(done.placement.holder_lists(), target.holder_lists());
    }

    #[test]
    fn appended_videos_get_a_free_first_copy_and_pay_for_the_rest() {
        // prev covers 1 video; the target's appended video 1 wants two
        // copies. Its first copy is content ingest (free, lands even
        // at cap 0 so the hybrid stays structurally valid); the second
        // is churn and defers.
        let prev = placement(vec![vec![0]]);
        let target = placement(vec![vec![0], vec![1, 2]]);
        let p = apply_churn_cap(&prev, &target, Some(0), &[], 0).unwrap();
        assert_eq!(p.moved, 0);
        assert_eq!(p.placement.n_videos(), 2);
        assert_eq!(p.placement.stores(VideoId::new(1)), &[VhoId::new(1)]);
        assert_eq!(
            p.deferred,
            vec![DeferredMigration {
                video: VideoId::new(1),
                copies: 1,
                since_cycle: 0
            }]
        );
        // With budget the appended video adopts fully at cost 1.
        let done = apply_churn_cap(&p.placement, &target, Some(1), &p.deferred, 1).unwrap();
        assert_eq!(done.moved, 1);
        assert!(done.deferred.is_empty());
        assert_eq!(done.placement.holder_lists(), target.holder_lists());
        // A prev *longer* than the target stays a typed error.
        assert!(apply_churn_cap(&target, &prev, None, &[], 0).is_err());
    }

    #[test]
    fn removals_and_routing_changes_are_free() {
        let prev = placement(vec![vec![0, 1], vec![0]]);
        let target = placement(vec![vec![0], vec![0]]);
        // Shrinking video 0 and (trivially) re-routing costs nothing.
        let plan = apply_churn_cap(&prev, &target, Some(0), &[], 0).unwrap();
        assert_eq!(plan.moved, 0);
        assert!(plan.deferred.is_empty());
        assert_eq!(plan.placement.holder_lists(), target.holder_lists());
    }

    #[test]
    fn stale_deferred_entries_leave_the_queue() {
        let prev = placement(vec![vec![0], vec![1]]);
        let target = placement(vec![vec![0], vec![1]]); // no diff at all
        let stale = vec![DeferredMigration {
            video: VideoId::new(1),
            copies: 1,
            since_cycle: 0,
        }];
        let plan = apply_churn_cap(&prev, &target, Some(0), &stale, 3).unwrap();
        assert!(plan.deferred.is_empty());
        assert_eq!(plan.moved, 0);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let a = placement(vec![vec![0]]);
        let b = placement(vec![vec![0], vec![1]]);
        // prev longer than target: a shrunk video axis never happens
        // under append-only growth and is refused.
        assert!(apply_churn_cap(&b, &a, None, &[], 0).is_err());
        // prev shorter than target is the append path and is fine.
        assert!(apply_churn_cap(&a, &b, None, &[], 0).is_ok());
    }

    #[test]
    fn deferred_records_round_trip_through_json() {
        let d = DeferredMigration {
            video: VideoId::new(7),
            copies: 3,
            since_cycle: 11,
        };
        assert_eq!(DeferredMigration::from_value(&d.to_value()).unwrap(), d);
        assert!(DeferredMigration::from_value(&Value::Null).is_err());
    }
}
