//! Durable pipeline state: everything the supervisor must remember
//! across a crash to continue exactly where it stopped.
//!
//! The state is one [`PipelineState`] value, persisted after every
//! stage transition as a checksummed `vod_json::snapshot` container
//! ([`STATE_KIND`]). Large intermediate artifacts (the fractional
//! solution between the solve and round stages, the in-flight solver
//! checkpoint) live in their own snapshot files next to it — the state
//! records only where the pipeline *is*, and the artifacts are
//! re-validated on load, so a corrupt or missing file degrades to
//! recomputing a stage, never to a wrong answer.

use std::fmt;
use vod_core::checkpoint::{placement_from_value, placement_to_value};
use vod_core::Placement;
use vod_json::snapshot::{
    f64_bits_value, f64_from_bits_value, fnv1a64, u64_bits_value, u64_from_bits_value,
};
use vod_json::Value;

/// Snapshot-container kind tag for the pipeline state file.
pub const STATE_KIND: &str = "ops-pipeline";
/// Pipeline state payload version.
pub const STATE_VERSION: u32 = 1;
/// Snapshot-container kind tag for the persisted fractional solution
/// (the solve→round stage boundary).
pub const FRACTIONAL_KIND: &str = "ops-fractional";
/// Fractional payload version.
pub const FRACTIONAL_VERSION: u32 = 1;

/// The five supervised stages of one re-optimization cycle, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageId {
    /// Build the demand estimate for the upcoming period.
    Estimate,
    /// EPF fractional solve (checkpointed every N passes).
    Solve,
    /// Sequential integer rounding of the persisted fractional.
    Round,
    /// Serviceability checks on the rounded placement.
    Validate,
    /// Replay the period's trace against the validated placement.
    Simulate,
}

impl StageId {
    pub const ALL: [StageId; 5] = [
        StageId::Estimate,
        StageId::Solve,
        StageId::Round,
        StageId::Validate,
        StageId::Simulate,
    ];

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageId::Estimate => "estimate",
            StageId::Solve => "solve",
            StageId::Round => "round",
            StageId::Validate => "validate",
            StageId::Simulate => "simulate",
        }
    }

    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|st| st.name() == s)
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a cycle fell back to the previous validated placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeReason {
    /// A stage failed (or was injected to fail) on every allowed
    /// attempt.
    StageFailed {
        stage: StageId,
        attempts: u32,
        last_error: String,
    },
    /// The rounded placement failed the serviceability checks.
    ValidationFailed { what: String },
    /// The service watchdog tripped: the cycle burned its whole
    /// deterministic supervision-tick budget without closing.
    Stalled {
        stage: StageId,
        ticks: u64,
        budget: u64,
    },
    /// The cycle closed while its durable snapshots could not be
    /// written (disk full, I/O errors). The service kept serving from
    /// memory and keeps retrying with recorded backoff, but crash
    /// safety was degraded for this cycle and the ledger says so.
    SnapshotUnavailable { failures: u64, what: String },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::StageFailed {
                stage,
                attempts,
                last_error,
            } => write!(
                f,
                "stage {stage} failed after {attempts} attempts: {last_error}"
            ),
            Self::ValidationFailed { what } => write!(f, "placement validation failed: {what}"),
            Self::Stalled {
                stage,
                ticks,
                budget,
            } => write!(
                f,
                "watchdog: cycle stalled at stage {stage} after {ticks} ticks (budget {budget})"
            ),
            Self::SnapshotUnavailable { failures, what } => write!(
                f,
                "state snapshots unavailable ({failures} failed writes, serving from memory): {what}"
            ),
        }
    }
}

/// Serialize a degradation reason (shared by the pipeline and service
/// state codecs).
pub(crate) fn reason_to_value(r: &DegradeReason) -> Value {
    match r {
        DegradeReason::StageFailed {
            stage,
            attempts,
            last_error,
        } => Value::Obj(vec![
            ("kind".into(), Value::Str("stage-failed".into())),
            ("stage".into(), Value::Str(stage.name().into())),
            ("attempts".into(), Value::Num(f64::from(*attempts))),
            ("last_error".into(), Value::Str(last_error.clone())),
        ]),
        DegradeReason::ValidationFailed { what } => Value::Obj(vec![
            ("kind".into(), Value::Str("validation-failed".into())),
            ("what".into(), Value::Str(what.clone())),
        ]),
        DegradeReason::Stalled {
            stage,
            ticks,
            budget,
        } => Value::Obj(vec![
            ("kind".into(), Value::Str("stalled".into())),
            ("stage".into(), Value::Str(stage.name().into())),
            ("ticks".into(), u64_bits_value(*ticks)),
            ("budget".into(), u64_bits_value(*budget)),
        ]),
        DegradeReason::SnapshotUnavailable { failures, what } => Value::Obj(vec![
            ("kind".into(), Value::Str("snapshot-unavailable".into())),
            ("failures".into(), u64_bits_value(*failures)),
            ("what".into(), Value::Str(what.clone())),
        ]),
    }
}

/// Decode a degradation reason; unknown kinds are typed errors.
pub(crate) fn reason_from_value(x: &Value) -> Result<DegradeReason, String> {
    let kind = x
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("degraded.kind: expected a string")?;
    let stage_of = || {
        x.get("stage")
            .and_then(Value::as_str)
            .and_then(StageId::from_name)
            .ok_or("degraded.stage: unknown stage")
    };
    match kind {
        "stage-failed" => Ok(DegradeReason::StageFailed {
            stage: stage_of()?,
            attempts: x
                .get("attempts")
                .and_then(Value::as_usize)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("degraded.attempts: expected a u32")?,
            last_error: x
                .get("last_error")
                .and_then(Value::as_str)
                .ok_or("degraded.last_error: expected a string")?
                .to_string(),
        }),
        "validation-failed" => Ok(DegradeReason::ValidationFailed {
            what: x
                .get("what")
                .and_then(Value::as_str)
                .ok_or("degraded.what: expected a string")?
                .to_string(),
        }),
        "stalled" => Ok(DegradeReason::Stalled {
            stage: stage_of()?,
            ticks: u64_from_bits_value(x.get("ticks").ok_or("degraded.ticks: missing")?, "ticks")
                .map_err(|e| e.to_string())?,
            budget: u64_from_bits_value(
                x.get("budget").ok_or("degraded.budget: missing")?,
                "budget",
            )
            .map_err(|e| e.to_string())?,
        }),
        "snapshot-unavailable" => Ok(DegradeReason::SnapshotUnavailable {
            failures: u64_from_bits_value(
                x.get("failures").ok_or("degraded.failures: missing")?,
                "failures",
            )
            .map_err(|e| e.to_string())?,
            what: x
                .get("what")
                .and_then(Value::as_str)
                .ok_or("degraded.what: expected a string")?
                .to_string(),
        }),
        other => Err(format!("degraded.kind: unknown kind {other:?}")),
    }
}

/// Serialize a cycle's simulation summary (shared codec).
pub(crate) fn sim_to_value(s: &SimSummary) -> Value {
    Value::Obj(vec![
        ("max_gbps".into(), f64_bits_value(s.max_gbps)),
        ("local_frac".into(), f64_bits_value(s.local_frac)),
        ("total_requests".into(), u64_bits_value(s.total_requests)),
    ])
}

/// Decode a simulation summary (shared codec).
pub(crate) fn sim_from_value(x: &Value, what: &str) -> Result<SimSummary, String> {
    let f = |key: &str| -> Result<f64, String> {
        f64_from_bits_value(
            x.get(key).ok_or_else(|| format!("{what}.{key}: missing"))?,
            key,
        )
        .map_err(|e| e.to_string())
    };
    Ok(SimSummary {
        max_gbps: f("max_gbps")?,
        local_frac: f("local_frac")?,
        total_requests: u64_from_bits_value(
            x.get("total_requests")
                .ok_or_else(|| format!("{what}.total_requests: missing"))?,
            "total_requests",
        )
        .map_err(|e| e.to_string())?,
    })
}

/// Why the pipeline as a whole stopped.
#[derive(Debug)]
pub enum OpsError {
    /// A cycle degraded before any validated placement existed — there
    /// is nothing serviceable to fall back to.
    NoFallback { cycle: usize, reason: DegradeReason },
    /// The pipeline inputs are rejected up front (bad config, provably
    /// infeasible instance). Retrying cannot help.
    Invalid { what: String },
    /// The durable state itself cannot be persisted (state directory
    /// unwritable). Continuing would silently forfeit crash safety.
    Io { what: String },
}

impl fmt::Display for OpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoFallback { cycle, reason } => {
                write!(
                    f,
                    "cycle {cycle} degraded with no last-good fallback: {reason}"
                )
            }
            Self::Invalid { what } => write!(f, "invalid pipeline input: {what}"),
            Self::Io { what } => write!(f, "pipeline state not durable: {what}"),
        }
    }
}

impl std::error::Error for OpsError {}

/// Simulation metrics of one cycle's serviceable placement.
#[derive(Debug, Clone)]
pub struct SimSummary {
    pub max_gbps: f64,
    pub local_frac: f64,
    pub total_requests: u64,
}

/// The per-cycle outcome ledger (the pipeline's Table VI row, plus
/// supervision metadata: retries, recorded backoff, resume counts).
#[derive(Debug, Clone)]
pub struct CycleRecord {
    pub cycle: usize,
    /// `None` = this cycle produced and validated a fresh placement;
    /// `Some` = it serves the previous cycle's placement instead.
    pub degraded: Option<DegradeReason>,
    /// Stage attempts consumed over the whole cycle (1 per stage when
    /// nothing fails).
    pub attempts: u32,
    /// Total *recorded* retry backoff. Never slept: the supervisor is
    /// deterministic and wall-clock-free; an operational deployment
    /// would sleep these amounts.
    pub backoff_ms: u64,
    /// Mid-solve checkpoint resumes observed during this cycle.
    pub solver_resumes: u32,
    /// FNV-64 of the serviceable placement's canonical serialization —
    /// the identity the kill/resume harness asserts on.
    pub placement_fnv: u64,
    /// Rounded objective (`None` for degraded cycles).
    pub objective: Option<f64>,
    /// Copies moved relative to the previous serviceable placement.
    pub migrated: usize,
    pub sim: Option<SimSummary>,
}

/// Complete durable supervisor state.
#[derive(Debug, Clone)]
pub struct PipelineState {
    /// Master seed (sanity-checked against the config on resume).
    pub seed: u64,
    /// Current cycle (index into the update schedule).
    pub cycle: usize,
    /// Next stage to run within the current cycle.
    pub stage: StageId,
    /// Attempts already burned on the current stage.
    pub attempts_done: u32,
    /// Attempts consumed so far in the current cycle (all stages).
    pub cycle_attempts: u32,
    /// Recorded backoff accumulated in the current cycle.
    pub cycle_backoff_ms: u64,
    /// Solver checkpoint resumes observed in the current cycle.
    pub cycle_solver_resumes: u32,
    /// The last validated placement and the cycle that produced it.
    pub last_good: Option<(usize, Placement)>,
    /// The current cycle's rounded-but-not-yet-validated placement.
    pub pending: Option<Placement>,
    /// Rounded objective of `pending` (set by the round stage).
    pub pending_objective: Option<f64>,
    /// Copies moved vs the previous serviceable placement (set by the
    /// validate stage).
    pub pending_migrated: usize,
    /// Sim summary of the current cycle (set by the simulate stage).
    pub pending_sim: Option<SimSummary>,
    /// Closed-cycle ledger.
    pub records: Vec<CycleRecord>,
    /// Process-level resumes (state file successfully re-loaded).
    pub resumes: u64,
    /// Fresh starts forced by a corrupt/unreadable state file.
    pub cold_restarts: u64,
}

impl PipelineState {
    #[must_use]
    pub fn fresh(seed: u64) -> Self {
        Self {
            seed,
            cycle: 0,
            stage: StageId::Estimate,
            attempts_done: 0,
            cycle_attempts: 0,
            cycle_backoff_ms: 0,
            cycle_solver_resumes: 0,
            last_good: None,
            pending: None,
            pending_objective: None,
            pending_migrated: 0,
            pending_sim: None,
            records: Vec::new(),
            resumes: 0,
            cold_restarts: 0,
        }
    }

    /// Canonical placement fingerprint (what the kill/resume identity
    /// harness compares).
    #[must_use]
    pub fn placement_fingerprint(p: &Placement) -> u64 {
        fnv1a64(placement_to_value(p).to_string_pretty().as_bytes())
    }

    pub fn to_value(&self) -> Value {
        let sim_v = sim_to_value;
        let reason_v = reason_to_value;
        let record_v = |r: &CycleRecord| {
            Value::Obj(vec![
                ("cycle".into(), Value::Num(r.cycle as f64)),
                (
                    "degraded".into(),
                    r.degraded.as_ref().map_or(Value::Null, reason_v),
                ),
                ("attempts".into(), Value::Num(f64::from(r.attempts))),
                ("backoff_ms".into(), u64_bits_value(r.backoff_ms)),
                (
                    "solver_resumes".into(),
                    Value::Num(f64::from(r.solver_resumes)),
                ),
                ("placement_fnv".into(), u64_bits_value(r.placement_fnv)),
                (
                    "objective".into(),
                    r.objective.map_or(Value::Null, f64_bits_value),
                ),
                ("migrated".into(), Value::Num(r.migrated as f64)),
                ("sim".into(), r.sim.as_ref().map_or(Value::Null, sim_v)),
            ])
        };
        Value::Obj(vec![
            ("seed".into(), u64_bits_value(self.seed)),
            ("cycle".into(), Value::Num(self.cycle as f64)),
            ("stage".into(), Value::Str(self.stage.name().into())),
            (
                "attempts_done".into(),
                Value::Num(f64::from(self.attempts_done)),
            ),
            (
                "cycle_attempts".into(),
                Value::Num(f64::from(self.cycle_attempts)),
            ),
            (
                "cycle_backoff_ms".into(),
                u64_bits_value(self.cycle_backoff_ms),
            ),
            (
                "cycle_solver_resumes".into(),
                Value::Num(f64::from(self.cycle_solver_resumes)),
            ),
            (
                "last_good".into(),
                self.last_good.as_ref().map_or(Value::Null, |(c, p)| {
                    Value::Obj(vec![
                        ("cycle".into(), Value::Num(*c as f64)),
                        ("placement".into(), placement_to_value(p)),
                    ])
                }),
            ),
            (
                "pending".into(),
                self.pending
                    .as_ref()
                    .map_or(Value::Null, placement_to_value),
            ),
            (
                "pending_objective".into(),
                self.pending_objective.map_or(Value::Null, f64_bits_value),
            ),
            (
                "pending_migrated".into(),
                Value::Num(self.pending_migrated as f64),
            ),
            (
                "pending_sim".into(),
                self.pending_sim.as_ref().map_or(Value::Null, sim_v),
            ),
            (
                "records".into(),
                Value::Arr(self.records.iter().map(record_v).collect()),
            ),
            ("resumes".into(), u64_bits_value(self.resumes)),
            ("cold_restarts".into(), u64_bits_value(self.cold_restarts)),
        ])
    }

    /// Decode a persisted state. Every malformed field is a typed
    /// error string — the caller falls back to a fresh start.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let field = |key: &str| -> Result<&Value, String> {
            v.get(key).ok_or_else(|| format!("missing field {key:?}"))
        };
        let num_u32 = |x: &Value, what: &str| -> Result<u32, String> {
            x.as_usize()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("{what}: expected a u32"))
        };
        let sim_of = sim_from_value;
        let reason_of = reason_from_value;
        let records = field("records")?
            .as_arr()
            .ok_or("records: expected an array")?
            .iter()
            .map(|r| -> Result<CycleRecord, String> {
                let rf = |key: &str| -> Result<&Value, String> {
                    r.get(key).ok_or_else(|| format!("records.{key}: missing"))
                };
                Ok(CycleRecord {
                    cycle: rf("cycle")?
                        .as_usize()
                        .ok_or("records.cycle: expected int")?,
                    degraded: match rf("degraded")? {
                        Value::Null => None,
                        other => Some(reason_of(other)?),
                    },
                    attempts: num_u32(rf("attempts")?, "records.attempts")?,
                    backoff_ms: u64_from_bits_value(rf("backoff_ms")?, "backoff_ms")
                        .map_err(|e| e.to_string())?,
                    solver_resumes: num_u32(rf("solver_resumes")?, "records.solver_resumes")?,
                    placement_fnv: u64_from_bits_value(rf("placement_fnv")?, "placement_fnv")
                        .map_err(|e| e.to_string())?,
                    objective: match rf("objective")? {
                        Value::Null => None,
                        other => Some(
                            f64_from_bits_value(other, "objective").map_err(|e| e.to_string())?,
                        ),
                    },
                    migrated: rf("migrated")?
                        .as_usize()
                        .ok_or("records.migrated: expected int")?,
                    sim: match rf("sim")? {
                        Value::Null => None,
                        other => Some(sim_of(other, "records.sim")?),
                    },
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            seed: u64_from_bits_value(field("seed")?, "seed").map_err(|e| e.to_string())?,
            cycle: field("cycle")?.as_usize().ok_or("cycle: expected int")?,
            stage: field("stage")?
                .as_str()
                .and_then(StageId::from_name)
                .ok_or("stage: unknown stage name")?,
            attempts_done: num_u32(field("attempts_done")?, "attempts_done")?,
            cycle_attempts: num_u32(field("cycle_attempts")?, "cycle_attempts")?,
            cycle_backoff_ms: u64_from_bits_value(field("cycle_backoff_ms")?, "cycle_backoff_ms")
                .map_err(|e| e.to_string())?,
            cycle_solver_resumes: num_u32(field("cycle_solver_resumes")?, "cycle_solver_resumes")?,
            last_good: match field("last_good")? {
                Value::Null => None,
                other => {
                    let c = other
                        .get("cycle")
                        .and_then(Value::as_usize)
                        .ok_or("last_good.cycle: expected int")?;
                    let p = placement_from_value(
                        other
                            .get("placement")
                            .ok_or("last_good.placement: missing")?,
                    )
                    .map_err(|e| e.to_string())?;
                    Some((c, p))
                }
            },
            pending: match field("pending")? {
                Value::Null => None,
                other => Some(placement_from_value(other).map_err(|e| e.to_string())?),
            },
            pending_objective: match field("pending_objective")? {
                Value::Null => None,
                other => Some(
                    f64_from_bits_value(other, "pending_objective").map_err(|e| e.to_string())?,
                ),
            },
            pending_migrated: field("pending_migrated")?
                .as_usize()
                .ok_or("pending_migrated: expected int")?,
            pending_sim: match field("pending_sim")? {
                Value::Null => None,
                other => Some(sim_of(other, "pending_sim")?),
            },
            records,
            resumes: u64_from_bits_value(field("resumes")?, "resumes")
                .map_err(|e| e.to_string())?,
            cold_restarts: u64_from_bits_value(field("cold_restarts")?, "cold_restarts")
                .map_err(|e| e.to_string())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::VhoId;

    fn sample_state() -> PipelineState {
        let p = Placement::from_parts(
            4,
            vec![vec![VhoId::new(0), VhoId::new(2)], vec![VhoId::new(1)]],
            vec![
                vec![(VhoId::new(1), vec![(VhoId::new(0), 1.0)])],
                Vec::new(),
            ],
        )
        .unwrap();
        PipelineState {
            seed: 0x1234_5678_9abc_def0,
            cycle: 2,
            stage: StageId::Round,
            attempts_done: 1,
            cycle_attempts: 3,
            cycle_backoff_ms: 750,
            cycle_solver_resumes: 1,
            last_good: Some((1, p.clone())),
            pending: Some(p),
            pending_objective: Some(17.25),
            pending_migrated: 5,
            pending_sim: Some(SimSummary {
                max_gbps: 0.75,
                local_frac: 0.5,
                total_requests: 1234,
            }),
            records: vec![
                CycleRecord {
                    cycle: 0,
                    degraded: None,
                    attempts: 4,
                    backoff_ms: 0,
                    solver_resumes: 0,
                    placement_fnv: 0xfeed_beef,
                    objective: Some(42.5),
                    migrated: 7,
                    sim: None,
                },
                CycleRecord {
                    cycle: 1,
                    degraded: Some(DegradeReason::StageFailed {
                        stage: StageId::Solve,
                        attempts: 3,
                        last_error: "injected failure".into(),
                    }),
                    attempts: 3,
                    backoff_ms: 1500,
                    solver_resumes: 2,
                    placement_fnv: 0xfeed_beef,
                    objective: None,
                    migrated: 0,
                    sim: Some(SimSummary {
                        max_gbps: 1.5,
                        local_frac: 0.25,
                        total_requests: 99,
                    }),
                },
            ],
            resumes: 3,
            cold_restarts: 1,
        }
    }

    #[test]
    fn state_round_trips() {
        let st = sample_state();
        let back = PipelineState::from_value(&st.to_value()).unwrap();
        assert_eq!(back.seed, st.seed);
        assert_eq!(back.cycle, st.cycle);
        assert_eq!(back.stage, st.stage);
        assert_eq!(back.attempts_done, st.attempts_done);
        assert_eq!(back.cycle_backoff_ms, st.cycle_backoff_ms);
        assert_eq!(back.pending_objective, st.pending_objective);
        assert_eq!(back.pending_migrated, st.pending_migrated);
        assert_eq!(back.records.len(), 2);
        assert_eq!(back.records[1].degraded, st.records[1].degraded);
        assert_eq!(back.records[0].objective, st.records[0].objective);
        assert_eq!(back.resumes, 3);
        assert_eq!(back.cold_restarts, 1);
        let (c, p) = back.last_good.unwrap();
        assert_eq!(c, 1);
        assert_eq!(
            p.holder_lists(),
            st.last_good.as_ref().unwrap().1.holder_lists()
        );
        // Canonical serialization is stable, so fingerprints are too.
        assert_eq!(
            PipelineState::placement_fingerprint(&p),
            PipelineState::placement_fingerprint(&st.last_good.unwrap().1)
        );
    }

    #[test]
    fn malformed_states_are_typed_errors() {
        assert!(PipelineState::from_value(&Value::Null).is_err());
        assert!(PipelineState::from_value(&Value::Obj(vec![])).is_err());
        let mut v = sample_state().to_value();
        if let Value::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "stage" {
                    *val = Value::Str("no-such-stage".into());
                }
            }
        }
        let err = PipelineState::from_value(&v).unwrap_err();
        assert!(err.contains("stage"), "{err}");
    }

    #[test]
    fn every_degrade_reason_round_trips() {
        for r in [
            DegradeReason::StageFailed {
                stage: StageId::Round,
                attempts: 2,
                last_error: "boom".into(),
            },
            DegradeReason::ValidationFailed {
                what: "unsorted holders".into(),
            },
            DegradeReason::Stalled {
                stage: StageId::Solve,
                ticks: 9,
                budget: 8,
            },
            DegradeReason::SnapshotUnavailable {
                failures: 4,
                what: "persist service state: snapshot io error".into(),
            },
        ] {
            assert_eq!(reason_from_value(&reason_to_value(&r)).unwrap(), r);
        }
    }

    #[test]
    fn stage_names_round_trip() {
        for s in StageId::ALL {
            assert_eq!(StageId::from_name(s.name()), Some(s));
        }
        assert_eq!(StageId::from_name("bogus"), None);
    }
}
