//! The long-running supervised placement service.
//!
//! Where [`crate::Pipeline`] runs one durable pass over its schedule,
//! `Service` is the daemon form the paper operates (§VI: demand
//! re-estimated and the placement re-solved on an update cadence):
//! a deterministic multi-cycle loop that
//!
//! 1. feeds a streaming demand estimator from the live trace window
//!    ([`vod_estimate::StreamingWindow`] — amortized O(1) per cycle),
//! 2. incrementally re-solves each cycle via the warm-start ladder
//!    ([`vod_core::solve_cycle_fractional`]) under a per-cycle
//!    deterministic pass budget ([`EpfConfig::budgeted`]),
//! 3. deploys migration-cost-aware diffs under a churn cap
//!    ([`crate::diff::apply_churn_cap`]) — excess copies become typed
//!    [`DeferredMigration`]s that drain oldest-first in later cycles,
//! 4. runs under a supervision layer: per-stage retry budgets with
//!    recorded (never-slept) seeded backoff, a deterministic
//!    [`Watchdog`] that degrades stalled cycles, and a
//!    graceful-degradation ladder — warm-resume → cold re-solve →
//!    last-good placement → stale-serve with denial accounting. A
//!    cycle can *degrade*; the service never aborts.
//!
//! Determinism contract (inherited from the pipeline, pinned by the
//! `service_drill` bench): the service never reads a clock and never
//! sleeps; every cycle's deployed placement is a pure function of
//! (world, config, seed, cycle). An interrupted run — killed at any
//! stage boundary, killed mid-solve, state file torn at any byte,
//! checkpoint swapped for a foreign one — re-converges to deployed
//! placements byte-identical to the uninterrupted twin's.

use std::path::PathBuf;
use vod_core::checkpoint::{
    fractional_from_value, fractional_to_value, CHECKPOINT_KIND, CHECKPOINT_VERSION,
};
use vod_core::rounding::round_solution;
use vod_core::{
    remap_checkpoint, repair_placement, solve_cycle_fractional, CheckpointSpec, DiskConfig,
    EpfConfig, MipInstance, Placement, PlacementCost, ResumeKind, SolverCheckpoint,
};
use vod_estimate::{estimate_demand, StreamingWindow};
use vod_json::snapshot::{
    f64_bits_value, f64_from_bits_value, read_json_snapshot, read_snapshot, u64_bits_value,
    u64_from_bits_value, write_json_snapshot, write_snapshot_atomic, SnapshotError,
};
use vod_json::Value;
use vod_model::rng::derive_seed;
use vod_model::time::DAY;
use vod_model::{
    Catalog, Gigabytes, SimTime, TimeWindow, VhoId, Video, VideoClass, VideoId, VideoKind,
};
use vod_net::{DeltaOp, WorldDelta};
use vod_sim::{mip_vho_configs, simulate, CacheKind, FaultSchedule, PolicyKind, SimConfig};

use crate::diff::{apply_churn_cap, DeferredMigration};
use crate::pipeline::{
    effective_cycles, epf_config_token, serviceable, OpsConfig, OpsWorld, StepOutcome,
};
use crate::state::{
    reason_from_value, reason_to_value, sim_from_value, sim_to_value, DegradeReason, OpsError,
    SimSummary, StageId, FRACTIONAL_KIND, FRACTIONAL_VERSION,
};
use crate::supervise::{recorded_backoff, RecoveryAction, Watchdog};

/// Snapshot-container kind tag for the service state file.
pub const SERVICE_KIND: &str = "ops-service";
/// Service state payload version. v2 added live-reconfiguration state
/// (applied-delta counter, repair/rejection ledgers, snapshot-failure
/// accounting); v1 files cold-restart via the version gate.
pub const SERVICE_VERSION: u32 = 2;

/// MIP disk budget assigned to a storage-dark (decommissioned) VHO.
/// Must stay positive ([`MipInstance`] rejects zero capacities) but
/// below the smallest video size, so the solver can never place a
/// copy there while the node keeps existing on every axis.
const DARK_DISK_GB: f64 = 1e-6;

/// Cycle seed salt — distinct from the pipeline's `0x0E5F` so solver
/// checkpoints written by one supervisor can never validate against
/// the other's cycles.
const SERVICE_CYCLE_SALT: u64 = 0x5EBF;

/// Service parameters: the pipeline's schedule plus the service-only
/// knobs (churn cap, per-cycle budget, watchdog, fault feed).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Schedule, solver, retry and state-dir parameters (the service
    /// stores its own `service.state` next to the solver artifacts).
    pub ops: OpsConfig,
    /// Copies the service may move per cycle; `None` = unbounded.
    pub churn_cap: Option<usize>,
    /// Deterministic per-cycle solver budget in global passes, applied
    /// on top of `ops.epf` via [`EpfConfig::budgeted`]. `None` = the
    /// solver config as-is.
    pub cycle_step_budget: Option<u64>,
    /// Supervision ticks one cycle may burn before the watchdog
    /// degrades it ([`Watchdog`]).
    pub watchdog_budget: u64,
    /// Fault schedules injected into specific cycles' replay stage
    /// (validated against the world up front).
    pub cycle_faults: Vec<(usize, FaultSchedule)>,
    /// World deltas applied between cycles, sorted by cycle
    /// (non-decreasing; several per cycle are applied in order). Each
    /// is validated against the initial topology up front, applied as
    /// its own durable transition at the start of its cycle, and the
    /// deployed placement is repaired under the churn cap
    /// ([`vod_core::repair`]).
    pub cycle_deltas: Vec<WorldDelta>,
}

/// Deterministic chaos injection for drills: forced stage failures,
/// process kills at stage boundaries, and mid-solve kills.
#[derive(Debug, Clone, Default)]
pub struct ServicePlan {
    /// `(cycle, stage, attempt)` triples that fail with an injected
    /// error instead of running.
    pub fail: Vec<(usize, StageId, u32)>,
    /// `(cycle, stage)` pairs: the "process" dies immediately before
    /// executing that stage — nothing is run or persisted. Fires once
    /// per pair per `Service` value; stepping again (or rebuilding the
    /// service over the same state dir) models the restart.
    pub kill_at_stage: Vec<(usize, StageId)>,
    /// `(cycle, keep_checkpoints)`: during that cycle's solve, stop
    /// persisting after `keep_checkpoints` checkpoint emissions and
    /// report a simulated crash (same contract as
    /// [`crate::FaultPlan::kill_mid_solve`]).
    pub kill_mid_solve: Vec<(usize, u64)>,
}

/// One closed service cycle: the ledger row `BENCH_service.json`
/// aggregates.
#[derive(Debug, Clone)]
pub struct ServiceRecord {
    pub cycle: usize,
    /// `None` = a fresh placement was deployed this cycle.
    pub degraded: Option<DegradeReason>,
    /// Degradation-ladder rungs recorded during the cycle, in order.
    pub recoveries: Vec<RecoveryAction>,
    pub attempts: u32,
    /// Recorded (never slept) retry backoff.
    pub backoff_ms: u64,
    pub solver_resumes: u32,
    /// Fingerprint of the placement *serving* at cycle close (the
    /// post-churn-cap deployment) — the chaos drill's identity anchor.
    pub placement_fnv: u64,
    /// Rounded objective of the cycle's full target (pre-churn-cap).
    pub objective: Option<f64>,
    /// Certified fractional lower bound (per-cycle optimality gap =
    /// `objective / lower_bound - 1`).
    pub lower_bound: Option<f64>,
    /// Copies actually moved this cycle (`<= churn_cap` always).
    pub moved: usize,
    /// Deferred-migration queue length after this cycle.
    pub deferred: usize,
    /// Requests denied during the window (stale-served demand counts
    /// in full).
    pub denied: u64,
    pub denial_rate: Option<f64>,
    /// True when the window was served with *no* deployment at all.
    pub stale: bool,
    pub sim: Option<SimSummary>,
    /// Fingerprints of the feasibility-repair plans executed this cycle
    /// (one per applied world delta that required repair) — the
    /// reconfig drill's identity anchor for repair behaviour.
    pub repairs: Vec<u64>,
    /// Typed solver-checkpoint rejections surfaced this cycle, each
    /// prefixed `remap-eligible:` or `foreign:`.
    pub rejections: Vec<String>,
}

/// Complete durable service state (persisted after every transition).
#[derive(Debug, Clone)]
pub struct ServiceState {
    pub seed: u64,
    pub cycle: usize,
    pub stage: StageId,
    pub attempts_done: u32,
    pub cycle_attempts: u32,
    pub cycle_backoff_ms: u64,
    pub cycle_solver_resumes: u32,
    pub cycle_recoveries: Vec<RecoveryAction>,
    /// The placement currently serving, and the cycle that deployed it.
    pub deployed: Option<(usize, Placement)>,
    /// The current cycle's rounded full-target placement.
    pub target: Option<Placement>,
    pub target_objective: Option<f64>,
    pub target_lower_bound: Option<f64>,
    pub pending_moved: usize,
    pub pending_sim: Option<SimSummary>,
    pub pending_denied: u64,
    pub pending_denial: Option<f64>,
    /// Migrations postponed by the churn cap, oldest first.
    pub deferred: Vec<DeferredMigration>,
    pub records: Vec<ServiceRecord>,
    pub resumes: u64,
    pub cold_restarts: u64,
    pub stale_serves: u64,
    /// Prefix of [`ServiceConfig::cycle_deltas`] already applied. The
    /// counter is durable and advances atomically with the delta's
    /// world mutation + repair, so a crash can never re-apply (or
    /// skip) a delta; construction replays this prefix to rebuild the
    /// evolved world.
    pub deltas_applied: usize,
    /// Lifetime count of failed snapshot writes (the service keeps
    /// serving from memory and retries; see
    /// [`DegradeReason::SnapshotUnavailable`]).
    pub snapshot_failures: u64,
    /// Repair-plan fingerprints accumulated in the current cycle.
    pub cycle_repairs: Vec<u64>,
    /// Checkpoint rejections accumulated in the current cycle.
    pub cycle_rejections: Vec<String>,
}

impl ServiceState {
    #[must_use]
    pub fn fresh(seed: u64) -> Self {
        Self {
            seed,
            cycle: 0,
            stage: StageId::Estimate,
            attempts_done: 0,
            cycle_attempts: 0,
            cycle_backoff_ms: 0,
            cycle_solver_resumes: 0,
            cycle_recoveries: Vec::new(),
            deployed: None,
            target: None,
            target_objective: None,
            target_lower_bound: None,
            pending_moved: 0,
            pending_sim: None,
            pending_denied: 0,
            pending_denial: None,
            deferred: Vec::new(),
            records: Vec::new(),
            resumes: 0,
            cold_restarts: 0,
            stale_serves: 0,
            deltas_applied: 0,
            snapshot_failures: 0,
            cycle_repairs: Vec::new(),
            cycle_rejections: Vec::new(),
        }
    }

    pub fn to_value(&self) -> Value {
        use vod_core::checkpoint::placement_to_value;
        let record_v = |r: &ServiceRecord| {
            Value::Obj(vec![
                ("cycle".into(), Value::Num(r.cycle as f64)),
                (
                    "degraded".into(),
                    r.degraded.as_ref().map_or(Value::Null, reason_to_value),
                ),
                (
                    "recoveries".into(),
                    Value::Arr(
                        r.recoveries
                            .iter()
                            .map(|a| Value::Str(a.name().into()))
                            .collect(),
                    ),
                ),
                ("attempts".into(), Value::Num(f64::from(r.attempts))),
                ("backoff_ms".into(), u64_bits_value(r.backoff_ms)),
                (
                    "solver_resumes".into(),
                    Value::Num(f64::from(r.solver_resumes)),
                ),
                ("placement_fnv".into(), u64_bits_value(r.placement_fnv)),
                (
                    "objective".into(),
                    r.objective.map_or(Value::Null, f64_bits_value),
                ),
                (
                    "lower_bound".into(),
                    r.lower_bound.map_or(Value::Null, f64_bits_value),
                ),
                ("moved".into(), Value::Num(r.moved as f64)),
                ("deferred".into(), Value::Num(r.deferred as f64)),
                ("denied".into(), u64_bits_value(r.denied)),
                (
                    "denial_rate".into(),
                    r.denial_rate.map_or(Value::Null, f64_bits_value),
                ),
                ("stale".into(), Value::Bool(r.stale)),
                (
                    "sim".into(),
                    r.sim.as_ref().map_or(Value::Null, sim_to_value),
                ),
                (
                    "repairs".into(),
                    Value::Arr(r.repairs.iter().map(|&f| u64_bits_value(f)).collect()),
                ),
                (
                    "rejections".into(),
                    Value::Arr(r.rejections.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
            ])
        };
        Value::Obj(vec![
            ("seed".into(), u64_bits_value(self.seed)),
            ("cycle".into(), Value::Num(self.cycle as f64)),
            ("stage".into(), Value::Str(self.stage.name().into())),
            (
                "attempts_done".into(),
                Value::Num(f64::from(self.attempts_done)),
            ),
            (
                "cycle_attempts".into(),
                Value::Num(f64::from(self.cycle_attempts)),
            ),
            (
                "cycle_backoff_ms".into(),
                u64_bits_value(self.cycle_backoff_ms),
            ),
            (
                "cycle_solver_resumes".into(),
                Value::Num(f64::from(self.cycle_solver_resumes)),
            ),
            (
                "cycle_recoveries".into(),
                Value::Arr(
                    self.cycle_recoveries
                        .iter()
                        .map(|a| Value::Str(a.name().into()))
                        .collect(),
                ),
            ),
            (
                "deployed".into(),
                self.deployed.as_ref().map_or(Value::Null, |(c, p)| {
                    Value::Obj(vec![
                        ("cycle".into(), Value::Num(*c as f64)),
                        ("placement".into(), placement_to_value(p)),
                    ])
                }),
            ),
            (
                "target".into(),
                self.target.as_ref().map_or(Value::Null, placement_to_value),
            ),
            (
                "target_objective".into(),
                self.target_objective.map_or(Value::Null, f64_bits_value),
            ),
            (
                "target_lower_bound".into(),
                self.target_lower_bound.map_or(Value::Null, f64_bits_value),
            ),
            (
                "pending_moved".into(),
                Value::Num(self.pending_moved as f64),
            ),
            (
                "pending_sim".into(),
                self.pending_sim.as_ref().map_or(Value::Null, sim_to_value),
            ),
            ("pending_denied".into(), u64_bits_value(self.pending_denied)),
            (
                "pending_denial".into(),
                self.pending_denial.map_or(Value::Null, f64_bits_value),
            ),
            (
                "deferred".into(),
                Value::Arr(self.deferred.iter().map(|d| d.to_value()).collect()),
            ),
            (
                "records".into(),
                Value::Arr(self.records.iter().map(record_v).collect()),
            ),
            ("resumes".into(), u64_bits_value(self.resumes)),
            ("cold_restarts".into(), u64_bits_value(self.cold_restarts)),
            ("stale_serves".into(), u64_bits_value(self.stale_serves)),
            (
                "deltas_applied".into(),
                Value::Num(self.deltas_applied as f64),
            ),
            (
                "snapshot_failures".into(),
                u64_bits_value(self.snapshot_failures),
            ),
            (
                "cycle_repairs".into(),
                Value::Arr(
                    self.cycle_repairs
                        .iter()
                        .map(|&f| u64_bits_value(f))
                        .collect(),
                ),
            ),
            (
                "cycle_rejections".into(),
                Value::Arr(
                    self.cycle_rejections
                        .iter()
                        .map(|s| Value::Str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode a persisted state; any malformed field is a typed error
    /// string and the caller cold-restarts.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        use vod_core::checkpoint::placement_from_value;
        let field = |key: &str| -> Result<&Value, String> {
            v.get(key).ok_or_else(|| format!("missing field {key:?}"))
        };
        let num_u32 = |x: &Value, what: &str| -> Result<u32, String> {
            x.as_usize()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("{what}: expected a u32"))
        };
        let recoveries_of = |x: &Value, what: &str| -> Result<Vec<RecoveryAction>, String> {
            x.as_arr()
                .ok_or_else(|| format!("{what}: expected an array"))?
                .iter()
                .map(|a| {
                    a.as_str()
                        .and_then(RecoveryAction::from_name)
                        .ok_or_else(|| format!("{what}: unknown recovery action"))
                })
                .collect()
        };
        let opt_f64 = |x: &Value, what: &str| -> Result<Option<f64>, String> {
            match x {
                Value::Null => Ok(None),
                other => f64_from_bits_value(other, what)
                    .map(Some)
                    .map_err(|e| e.to_string()),
            }
        };
        let u64s_of = |x: &Value, what: &str| -> Result<Vec<u64>, String> {
            x.as_arr()
                .ok_or_else(|| format!("{what}: expected an array"))?
                .iter()
                .map(|f| u64_from_bits_value(f, what).map_err(|e| e.to_string()))
                .collect()
        };
        let strs_of = |x: &Value, what: &str| -> Result<Vec<String>, String> {
            x.as_arr()
                .ok_or_else(|| format!("{what}: expected an array"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{what}: expected strings"))
                })
                .collect()
        };
        let records = field("records")?
            .as_arr()
            .ok_or("records: expected an array")?
            .iter()
            .map(|r| -> Result<ServiceRecord, String> {
                let rf = |key: &str| -> Result<&Value, String> {
                    r.get(key).ok_or_else(|| format!("records.{key}: missing"))
                };
                Ok(ServiceRecord {
                    cycle: rf("cycle")?
                        .as_usize()
                        .ok_or("records.cycle: expected int")?,
                    degraded: match rf("degraded")? {
                        Value::Null => None,
                        other => Some(reason_from_value(other)?),
                    },
                    recoveries: recoveries_of(rf("recoveries")?, "records.recoveries")?,
                    attempts: num_u32(rf("attempts")?, "records.attempts")?,
                    backoff_ms: u64_from_bits_value(rf("backoff_ms")?, "backoff_ms")
                        .map_err(|e| e.to_string())?,
                    solver_resumes: num_u32(rf("solver_resumes")?, "records.solver_resumes")?,
                    placement_fnv: u64_from_bits_value(rf("placement_fnv")?, "placement_fnv")
                        .map_err(|e| e.to_string())?,
                    objective: opt_f64(rf("objective")?, "records.objective")?,
                    lower_bound: opt_f64(rf("lower_bound")?, "records.lower_bound")?,
                    moved: rf("moved")?
                        .as_usize()
                        .ok_or("records.moved: expected int")?,
                    deferred: rf("deferred")?
                        .as_usize()
                        .ok_or("records.deferred: expected int")?,
                    denied: u64_from_bits_value(rf("denied")?, "denied")
                        .map_err(|e| e.to_string())?,
                    denial_rate: opt_f64(rf("denial_rate")?, "records.denial_rate")?,
                    stale: rf("stale")?
                        .as_bool()
                        .ok_or("records.stale: expected bool")?,
                    sim: match rf("sim")? {
                        Value::Null => None,
                        other => Some(sim_from_value(other, "records.sim")?),
                    },
                    repairs: u64s_of(rf("repairs")?, "records.repairs")?,
                    rejections: strs_of(rf("rejections")?, "records.rejections")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let deferred = field("deferred")?
            .as_arr()
            .ok_or("deferred: expected an array")?
            .iter()
            .map(DeferredMigration::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            seed: u64_from_bits_value(field("seed")?, "seed").map_err(|e| e.to_string())?,
            cycle: field("cycle")?.as_usize().ok_or("cycle: expected int")?,
            stage: field("stage")?
                .as_str()
                .and_then(StageId::from_name)
                .ok_or("stage: unknown stage name")?,
            attempts_done: num_u32(field("attempts_done")?, "attempts_done")?,
            cycle_attempts: num_u32(field("cycle_attempts")?, "cycle_attempts")?,
            cycle_backoff_ms: u64_from_bits_value(field("cycle_backoff_ms")?, "cycle_backoff_ms")
                .map_err(|e| e.to_string())?,
            cycle_solver_resumes: num_u32(field("cycle_solver_resumes")?, "cycle_solver_resumes")?,
            cycle_recoveries: recoveries_of(field("cycle_recoveries")?, "cycle_recoveries")?,
            deployed: match field("deployed")? {
                Value::Null => None,
                other => {
                    let c = other
                        .get("cycle")
                        .and_then(Value::as_usize)
                        .ok_or("deployed.cycle: expected int")?;
                    let p = placement_from_value(
                        other
                            .get("placement")
                            .ok_or("deployed.placement: missing")?,
                    )
                    .map_err(|e| e.to_string())?;
                    Some((c, p))
                }
            },
            target: match field("target")? {
                Value::Null => None,
                other => Some(placement_from_value(other).map_err(|e| e.to_string())?),
            },
            target_objective: opt_f64(field("target_objective")?, "target_objective")?,
            target_lower_bound: opt_f64(field("target_lower_bound")?, "target_lower_bound")?,
            pending_moved: field("pending_moved")?
                .as_usize()
                .ok_or("pending_moved: expected int")?,
            pending_sim: match field("pending_sim")? {
                Value::Null => None,
                other => Some(sim_from_value(other, "pending_sim")?),
            },
            pending_denied: u64_from_bits_value(field("pending_denied")?, "pending_denied")
                .map_err(|e| e.to_string())?,
            pending_denial: opt_f64(field("pending_denial")?, "pending_denial")?,
            deferred,
            records,
            resumes: u64_from_bits_value(field("resumes")?, "resumes")
                .map_err(|e| e.to_string())?,
            cold_restarts: u64_from_bits_value(field("cold_restarts")?, "cold_restarts")
                .map_err(|e| e.to_string())?,
            stale_serves: u64_from_bits_value(field("stale_serves")?, "stale_serves")
                .map_err(|e| e.to_string())?,
            deltas_applied: field("deltas_applied")?
                .as_usize()
                .ok_or("deltas_applied: expected int")?,
            snapshot_failures: u64_from_bits_value(
                field("snapshot_failures")?,
                "snapshot_failures",
            )
            .map_err(|e| e.to_string())?,
            cycle_repairs: u64s_of(field("cycle_repairs")?, "cycle_repairs")?,
            cycle_rejections: strs_of(field("cycle_rejections")?, "cycle_rejections")?,
        })
    }
}

/// The supervised service loop. Construct with
/// [`Service::resume_or_start`], drive with [`Service::step`] or
/// [`Service::run`].
pub struct Service {
    /// The *current* world: the configured base world with the durable
    /// prefix of [`ServiceConfig::cycle_deltas`] replayed onto it.
    cur: OpsWorld,
    /// Storage-dark mask: `dark[i]` = VHO `i` is decommissioned. The
    /// node stays on every axis (ids never renumber); its MIP disk
    /// collapses to [`DARK_DISK_GB`] and repair drains its copies
    /// under the churn cap.
    dark: Vec<bool>,
    cfg: ServiceConfig,
    plan: ServicePlan,
    state: ServiceState,
    watchdog: Watchdog,
    /// History / period trace cursors (amortized O(1) window slides).
    history_win: StreamingWindow,
    period_win: StreamingWindow,
    fired_kills: Vec<usize>,
    fired_stage_kills: Vec<(usize, StageId)>,
    /// True while the durable snapshots lag the in-memory state (disk
    /// faults). The service keeps serving and every later transition
    /// retries the full write; a crash while dirty loses only replayable
    /// work, never determinism.
    dirty: bool,
    last_snapshot_error: Option<String>,
    /// Fractional payload kept in memory when its snapshot write
    /// failed, so the round stage can proceed without the disk. Not
    /// durable on purpose: a crash falls back to the retreat-to-solve
    /// recompute, which is deterministic.
    mem_fractional: Option<Value>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("cfg", &self.cfg)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Load `service.state` from the state dir and continue, or start
    /// fresh. Corrupt/truncated state = cold restart (counted, then
    /// the whole schedule deterministically replays — which is why a
    /// torn state file still re-converges to identical deployments);
    /// a state file from a different seed is refused.
    pub fn resume_or_start(
        world: &OpsWorld,
        cfg: ServiceConfig,
        plan: ServicePlan,
    ) -> Result<Self, OpsError> {
        let invalid = |what: String| Err(OpsError::Invalid { what });
        if cfg.ops.start_day < 7 {
            return invalid(format!(
                "start_day must be >= 7 (one week of history); got {}",
                cfg.ops.start_day
            ));
        }
        if cfg.ops.period_days == 0 || cfg.ops.cycles == 0 {
            return invalid("period_days and cycles must be >= 1".into());
        }
        if cfg.ops.max_attempts == 0 {
            return invalid("max_attempts must be >= 1".into());
        }
        if world.disks.len() != world.net.num_nodes() {
            return invalid(format!(
                "disk inventory has {} entries for {} VHOs",
                world.disks.len(),
                world.net.num_nodes()
            ));
        }
        if effective_cycles(world, &cfg.ops) == 0 {
            return invalid(format!(
                "trace horizon ends before start_day {}: no cycle fits",
                cfg.ops.start_day
            ));
        }
        for (cycle, schedule) in &cfg.cycle_faults {
            if let Err(e) = schedule.validate(world.net.num_nodes(), world.net.num_links()) {
                return invalid(format!("fault schedule for cycle {cycle}: {e}"));
            }
        }
        // World deltas: structurally valid against the base topology
        // (node/link axes never shrink, so initial-id validation covers
        // every later application point) and sorted by cycle.
        let mut last_delta_cycle = 0usize;
        for (i, delta) in cfg.cycle_deltas.iter().enumerate() {
            if let Err(e) = delta.validate(&world.net) {
                return invalid(format!("world delta {i}: {e}"));
            }
            if delta.cycle < last_delta_cycle {
                return invalid(format!(
                    "world delta {i} (cycle {}) is out of order: deltas must be \
                     sorted by cycle",
                    delta.cycle
                ));
            }
            last_delta_cycle = delta.cycle;
        }
        std::fs::create_dir_all(&cfg.ops.state_dir).map_err(|e| OpsError::Io {
            what: format!("create {}: {e}", cfg.ops.state_dir.display()),
        })?;
        let path = cfg.ops.state_dir.join("service.state");
        let seed = cfg.ops.epf.seed;
        let cold = || {
            let mut st = ServiceState::fresh(seed);
            st.cold_restarts = 1;
            st
        };
        let state = match read_json_snapshot(&path, SERVICE_KIND, SERVICE_VERSION) {
            Ok(v) => match ServiceState::from_value(&v) {
                Ok(mut st) if st.seed == seed => {
                    st.resumes += 1;
                    st
                }
                Ok(st) => {
                    return invalid(format!(
                        "state file {} belongs to seed {:#x}, config has {:#x}",
                        path.display(),
                        st.seed,
                        seed
                    ))
                }
                Err(_) => cold(),
            },
            Err(SnapshotError::Io { ref source, .. })
                if source.kind() == std::io::ErrorKind::NotFound =>
            {
                ServiceState::fresh(seed)
            }
            Err(_) => cold(),
        };
        if state.deltas_applied > cfg.cycle_deltas.len() {
            return invalid(format!(
                "state file records {} applied deltas but the schedule has {}: \
                 foreign delta schedule",
                state.deltas_applied,
                cfg.cycle_deltas.len()
            ));
        }
        // Rebuild the evolved world by replaying the durable prefix of
        // the delta schedule onto a copy of the base world. The replay
        // is pure, so a resumed process sees the identical topology,
        // catalog and dark mask the crashed one had.
        let mut cur = world.clone();
        let mut dark = vec![false; world.net.num_nodes()];
        for delta in &cfg.cycle_deltas[..state.deltas_applied] {
            apply_world_delta(&mut cur, &mut dark, delta);
        }
        // The watchdog resumes mid-cycle with the durable tick count,
        // so a restart cannot grant a stalled cycle a fresh budget.
        let mut watchdog = Watchdog::new(cfg.watchdog_budget);
        for _ in 0..state.cycle_attempts {
            let _ = watchdog.tick();
        }
        let mut svc = Self {
            cur,
            dark,
            cfg,
            plan,
            state,
            watchdog,
            history_win: StreamingWindow::new(),
            period_win: StreamingWindow::new(),
            fired_kills: Vec::new(),
            fired_stage_kills: Vec::new(),
            dirty: false,
            last_snapshot_error: None,
            mem_fractional: None,
        };
        svc.persist()?;
        Ok(svc)
    }

    #[must_use]
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// Cycles that actually fit in the trace horizon.
    #[must_use]
    pub fn effective_cycles(&self) -> usize {
        effective_cycles(&self.cur, &self.cfg.ops)
    }

    /// The current (delta-evolved) world the service optimizes against.
    #[must_use]
    pub fn world(&self) -> &OpsWorld {
        &self.cur
    }

    /// Storage-dark mask over the VHO axis (true = decommissioned).
    #[must_use]
    pub fn dark_mask(&self) -> &[bool] {
        &self.dark
    }

    /// True while the durable snapshots lag the in-memory state
    /// because of storage faults.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Drive the service to completion. The only error exit is an
    /// invalid configuration (caught in the constructor) — cycle-level
    /// trouble degrades and storage trouble is served from memory with
    /// retries; the loop never aborts.
    pub fn run(&mut self) -> Result<&ServiceState, OpsError> {
        while self.step()? != StepOutcome::Finished {}
        Ok(&self.state)
    }

    /// Execute one attempt of the current stage. Exactly one durable
    /// transition per call (none on simulated kills).
    pub fn step(&mut self) -> Result<StepOutcome, OpsError> {
        if self.state.cycle >= self.effective_cycles() {
            return Ok(StepOutcome::Finished);
        }
        let cycle = self.state.cycle;
        let stage = self.state.stage;
        if self.plan.kill_at_stage.contains(&(cycle, stage))
            && !self.fired_stage_kills.contains(&(cycle, stage))
        {
            // The process dies before the stage runs: nothing executes,
            // nothing mutates, nothing persists. The next step (or a
            // rebuilt service over the same state dir) re-runs the
            // stage from the identical durable state.
            self.fired_stage_kills.push((cycle, stage));
            return Ok(StepOutcome::SimulatedCrash { cycle });
        }
        // World deltas land at cycle boundaries, before the first stage
        // runs. One delta per step (its own durable transition); the
        // application is deterministic and does not consume watchdog
        // budget or stage attempts, so killed and unkilled twins count
        // identically.
        if stage == StageId::Estimate {
            if let Some(index) = self.pending_delta() {
                return self.apply_next_delta(cycle, index);
            }
        }
        if self.watchdog.tick() {
            return self.degrade(DegradeReason::Stalled {
                stage,
                ticks: self.watchdog.ticks(),
                budget: self.watchdog.budget(),
            });
        }
        self.state.cycle_attempts += 1;
        if self
            .plan
            .fail
            .contains(&(cycle, stage, self.state.attempts_done))
        {
            return self.fail_attempt(stage, "injected failure".into());
        }
        match stage {
            StageId::Estimate => self.step_estimate(cycle),
            StageId::Solve => self.step_solve(cycle),
            StageId::Round => self.step_round(cycle),
            StageId::Validate => self.step_validate(cycle),
            StageId::Simulate => self.step_simulate(cycle),
        }
    }

    // ---- live reconfiguration --------------------------------------

    /// Index of the next unapplied delta, if it is due at (or before)
    /// the current cycle.
    fn pending_delta(&self) -> Option<usize> {
        let next = self.state.deltas_applied;
        let delta = self.cfg.cycle_deltas.get(next)?;
        (delta.cycle <= self.state.cycle).then_some(next)
    }

    /// Apply one world delta as a single durable transition: mutate the
    /// evolved world, carry (or discard) warm solver state, repair the
    /// serving placement under the churn cap, and only then advance the
    /// durable `deltas_applied` counter — so a crash at any point
    /// either replays the whole delta or none of it.
    fn apply_next_delta(&mut self, cycle: usize, index: usize) -> Result<StepOutcome, OpsError> {
        let Some(delta) = self.cfg.cycle_deltas.get(index).cloned() else {
            return Ok(StepOutcome::Finished); // unreachable: index came from pending_delta
        };
        apply_world_delta(&mut self.cur, &mut self.dark, &delta);
        // Warm solver state: a capacity-only delta re-blesses the
        // mid-solve checkpoint via the remap rules (primal iterate
        // kept, dual bound reset); anything else discards it and the
        // solve stage falls through to a warm start off the deployed
        // placement.
        let ckpt_path = self.solver_ckpt_path();
        if let Ok(bytes) = read_snapshot(&ckpt_path, CHECKPOINT_KIND, CHECKPOINT_VERSION) {
            let inst = self.instance_for(cycle);
            let epf = self.epf_for_cycle(cycle);
            let remapped = SolverCheckpoint::from_bytes(&bytes)
                .ok()
                .and_then(|ck| remap_checkpoint(ck, &inst, &epf).ok());
            match remapped {
                Some(ck) => {
                    let _ = write_snapshot_atomic(
                        &ckpt_path,
                        CHECKPOINT_KIND,
                        CHECKPOINT_VERSION,
                        &ck.to_bytes(),
                    );
                }
                None => {
                    let _ = std::fs::remove_file(&ckpt_path);
                }
            }
        }
        // Feasibility repair of the placement that is *serving right
        // now*, fed through the same churn-capped diff as a regular
        // deploy: repair migrations spend the cycle's migration budget,
        // never exceed it.
        if let Some((deployed_cycle, deployed)) = self.state.deployed.clone() {
            let caps = self.mip_caps();
            let plan = repair_placement(&deployed, &self.cur.catalog, &self.dark, &caps);
            if !plan.is_noop() {
                self.state.cycle_repairs.push(plan.fingerprint());
                let budget = self
                    .cfg
                    .churn_cap
                    .map(|c| c.saturating_sub(self.state.pending_moved));
                match apply_churn_cap(
                    &deployed,
                    &plan.placement,
                    budget,
                    &self.state.deferred,
                    cycle,
                ) {
                    Ok(churned) => {
                        self.state.pending_moved += churned.moved;
                        self.state.deferred = churned.deferred;
                        self.state.deployed = Some((deployed_cycle, churned.placement));
                    }
                    // Repair preserves the video axis by construction,
                    // so the diff cannot reject shapes; degrade rather
                    // than abort if that invariant ever breaks.
                    Err(what) => return self.degrade(DegradeReason::ValidationFailed { what }),
                }
            }
            if delta.is_capacity_only() {
                // Warm state survived the reconfiguration: record the
                // remap rung so drills can assert a capacity tweak
                // never forces a cold solve.
                self.push_recovery(RecoveryAction::WarmRemap);
            }
        }
        self.state.deltas_applied = index + 1;
        self.persist()?;
        Ok(StepOutcome::DeltaApplied { cycle, index })
    }

    // ---- stages -----------------------------------------------------

    fn step_estimate(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        let inst = self.instance_for(cycle);
        if inst.n_videos() == 0 {
            return self.fail_attempt(
                StageId::Estimate,
                "estimate produced an empty instance".into(),
            );
        }
        self.advance(StageId::Solve)?;
        Ok(StepOutcome::StageDone {
            cycle,
            stage: StageId::Estimate,
        })
    }

    fn step_solve(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        let inst = self.instance_for(cycle);
        let epf = self.epf_for_cycle(cycle);
        let ckpt_path = self.solver_ckpt_path();
        let kill_at = self
            .plan
            .kill_mid_solve
            .iter()
            .find(|(c, _)| *c == cycle && !self.fired_kills.contains(c))
            .map(|&(_, keep)| keep);
        let prior = match read_snapshot(&ckpt_path, CHECKPOINT_KIND, CHECKPOINT_VERSION) {
            Ok(bytes) => SolverCheckpoint::from_bytes(&bytes).ok(),
            Err(_) => None,
        };
        let mut emitted: u64 = 0;
        let mut killed = false;
        let every = self.cfg.ops.checkpoint_every;
        let mut sink = |ck: SolverCheckpoint| {
            if killed {
                return;
            }
            if kill_at.is_some_and(|keep| emitted >= keep) {
                killed = true;
                return;
            }
            emitted += 1;
            let _ = write_snapshot_atomic(
                &ckpt_path,
                CHECKPOINT_KIND,
                CHECKPOINT_VERSION,
                &ck.to_bytes(),
            );
        };
        let warm = self.state.deployed.as_ref().map(|(_, p)| p.clone());
        let result = solve_cycle_fractional(
            &inst,
            &epf,
            prior.as_ref(),
            warm.as_ref(),
            Some(CheckpointSpec {
                every,
                sink: &mut sink,
            }),
        );
        match result {
            Ok((frac, stats, kind)) => {
                if killed {
                    self.fired_kills.push(cycle);
                    return Ok(StepOutcome::SimulatedCrash { cycle });
                }
                match kind {
                    ResumeKind::Checkpoint => {
                        self.state.cycle_solver_resumes += 1;
                        self.push_recovery(RecoveryAction::WarmResume);
                    }
                    // A checkpoint existed but did not validate for
                    // this (instance, config): it was discarded and
                    // the solve fell through to a cold trajectory.
                    // Classify the rejection for the ledger — axes
                    // intact (the remap-eligible class) vs genuinely
                    // foreign. Classification only: *using* the
                    // remapped state here would bless checkpoints the
                    // chaos twin never saw and break twin identity.
                    ResumeKind::Rejected { reason } => {
                        let verdict = match prior.as_ref() {
                            Some(ck) => match remap_checkpoint(ck.clone(), &inst, &epf) {
                                Ok(_) => "remap-eligible",
                                Err(_) => "foreign",
                            },
                            None => "foreign",
                        };
                        self.state
                            .cycle_rejections
                            .push(format!("{verdict}: {reason}"));
                        let _ = std::fs::remove_file(&ckpt_path);
                        self.push_recovery(RecoveryAction::ColdSolve);
                    }
                    ResumeKind::WarmStart | ResumeKind::Cold => {}
                }
                let payload = Value::Obj(vec![
                    ("cycle".into(), Value::Num(cycle as f64)),
                    (
                        "config".into(),
                        u64_bits_value(epf_config_token(&self.epf_for_cycle(cycle))),
                    ),
                    ("lower_bound".into(), f64_bits_value(stats.lower_bound)),
                    ("fractional".into(), fractional_to_value(&frac)),
                ]);
                // Disk trouble must not fail the stage: on a write
                // error the round stage consumes the payload from
                // memory, and a crash before the retry lands falls
                // back to the deterministic retreat-to-solve
                // recompute.
                match write_json_snapshot(
                    &self.fractional_path(),
                    FRACTIONAL_KIND,
                    FRACTIONAL_VERSION,
                    &payload,
                ) {
                    Ok(()) => self.mem_fractional = None,
                    Err(e) => {
                        self.note_snapshot_failure(format!("persist fractional: {e}"));
                        self.mem_fractional = Some(payload);
                    }
                }
                let _ = std::fs::remove_file(&ckpt_path);
                self.state.target_lower_bound = Some(stats.lower_bound);
                self.advance(StageId::Round)?;
                Ok(StepOutcome::StageDone {
                    cycle,
                    stage: StageId::Solve,
                })
            }
            Err(e) => self.fail_attempt(StageId::Solve, e.to_string()),
        }
    }

    fn step_round(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        let inst = self.instance_for(cycle);
        let token = epf_config_token(&self.epf_for_cycle(cycle));
        let check = |v: &Value| {
            let same_cycle = v.get("cycle")?.as_usize()? == cycle;
            let same_cfg = u64_from_bits_value(v.get("config")?, "config").ok()? == token;
            if !(same_cycle && same_cfg) {
                return None;
            }
            fractional_from_value(v.get("fractional")?, &inst).ok()
        };
        // Durable snapshot first; the in-memory copy is the fallback a
        // faulted disk leaves behind (same cycle/config gate applies).
        let frac = read_json_snapshot(&self.fractional_path(), FRACTIONAL_KIND, FRACTIONAL_VERSION)
            .ok()
            .and_then(|v| check(&v))
            .or_else(|| self.mem_fractional.as_ref().and_then(check));
        let Some(frac) = frac else {
            let _ = std::fs::remove_file(self.fractional_path());
            return self.retreat(StageId::Solve, StageId::Round, cycle);
        };
        let epf = self.epf_for_cycle(cycle);
        let (placement, stats) = round_solution(&inst, &frac, epf.gamma, epf.kernel);
        self.state.target = Some(placement);
        self.state.target_objective = Some(stats.objective);
        self.advance(StageId::Validate)?;
        Ok(StepOutcome::StageDone {
            cycle,
            stage: StageId::Round,
        })
    }

    fn step_validate(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        let Some(target) = self.state.target.clone() else {
            return self.retreat(StageId::Round, StageId::Validate, cycle);
        };
        let inst = self.instance_for(cycle);
        // The strict serviceability gate applies to the full target;
        // the churn-capped hybrid may transiently double-occupy disk
        // during the migration window (see `crate::diff`).
        if let Err(what) = serviceable(&target, &inst, self.cfg.ops.validate_tol) {
            return self.degrade(DegradeReason::ValidationFailed { what });
        }
        match &self.state.deployed {
            None => {
                // Bootstrap deployment: there is nothing serving yet,
                // so the churn cap (an *update* bandwidth bound) does
                // not apply — the initial fill is an offline bulk load.
                self.state.deployed = Some((cycle, target));
            }
            Some((_, prev)) => {
                // Repair migrations executed at the cycle boundary
                // already consumed part of this cycle's budget.
                let budget = self
                    .cfg
                    .churn_cap
                    .map(|c| c.saturating_sub(self.state.pending_moved));
                let plan = match apply_churn_cap(prev, &target, budget, &self.state.deferred, cycle)
                {
                    Ok(plan) => plan,
                    Err(what) => return self.degrade(DegradeReason::ValidationFailed { what }),
                };
                self.state.pending_moved += plan.moved;
                self.state.deferred = plan.deferred;
                self.state.deployed = Some((cycle, plan.placement));
            }
        }
        self.advance(StageId::Simulate)?;
        Ok(StepOutcome::StageDone {
            cycle,
            stage: StageId::Validate,
        })
    }

    fn step_simulate(&mut self, cycle: usize) -> Result<StepOutcome, OpsError> {
        if self.cfg.ops.simulate {
            let Some((_, deployed)) = self.state.deployed.clone() else {
                return self.retreat(StageId::Validate, StageId::Simulate, cycle);
            };
            let (sim, denied, denial) = self.replay_window(cycle, &deployed);
            self.state.pending_sim = Some(sim);
            self.state.pending_denied = denied;
            self.state.pending_denial = Some(denial);
        }
        // A cycle that closes while the durable snapshots lag the
        // in-memory state is visibly degraded — the deployment is
        // fresh, but a crash right now would replay work.
        let degraded = self.dirty.then(|| DegradeReason::SnapshotUnavailable {
            failures: self.state.snapshot_failures,
            what: self.last_snapshot_error.clone().unwrap_or_default(),
        });
        let record = ServiceRecord {
            cycle,
            degraded,
            recoveries: std::mem::take(&mut self.state.cycle_recoveries),
            attempts: self.state.cycle_attempts,
            backoff_ms: self.state.cycle_backoff_ms,
            solver_resumes: self.state.cycle_solver_resumes,
            placement_fnv: self.deployed_fingerprint(),
            objective: self.state.target_objective,
            lower_bound: self.state.target_lower_bound,
            moved: self.state.pending_moved,
            deferred: self.state.deferred.len(),
            denied: self.state.pending_denied,
            denial_rate: self.state.pending_denial,
            stale: false,
            sim: self.state.pending_sim.clone(),
            repairs: std::mem::take(&mut self.state.cycle_repairs),
            rejections: std::mem::take(&mut self.state.cycle_rejections),
        };
        self.state.records.push(record);
        self.close_cycle()?;
        Ok(StepOutcome::StageDone {
            cycle,
            stage: StageId::Simulate,
        })
    }

    // ---- supervision ------------------------------------------------

    fn push_recovery(&mut self, action: RecoveryAction) {
        self.state.cycle_recoveries.push(action);
    }

    fn fail_attempt(&mut self, stage: StageId, err: String) -> Result<StepOutcome, OpsError> {
        let cycle = self.state.cycle;
        let attempt = self.state.attempts_done;
        self.state.attempts_done += 1;
        let backoff = recorded_backoff(
            self.state.seed,
            cycle,
            stage,
            attempt,
            self.cfg.ops.backoff_base_ms,
        );
        self.state.cycle_backoff_ms += backoff;
        if self.state.attempts_done >= self.cfg.ops.max_attempts {
            return self.degrade(DegradeReason::StageFailed {
                stage,
                attempts: self.state.attempts_done,
                last_error: err,
            });
        }
        self.persist()?;
        Ok(StepOutcome::AttemptFailed {
            cycle,
            stage,
            attempt,
            backoff_ms: backoff,
        })
    }

    /// The graceful-degradation ladder's terminal rungs. With a
    /// deployment: keep serving it (last-good), with real denial
    /// accounting for the window. Without one: stale-serve — every
    /// request in the window is denied and *counted*. Either way the
    /// cycle closes and the service keeps running; there is no abort
    /// path here, unlike the pipeline's `NoFallback`.
    fn degrade(&mut self, reason: DegradeReason) -> Result<StepOutcome, OpsError> {
        let cycle = self.state.cycle;
        let record = match self.state.deployed.clone() {
            Some((_, deployed)) => {
                self.push_recovery(RecoveryAction::LastGood);
                let (sim, denied, denial) = if self.cfg.ops.simulate {
                    let (s, d, r) = self.replay_window(cycle, &deployed);
                    (Some(s), d, Some(r))
                } else {
                    (None, 0, None)
                };
                ServiceRecord {
                    cycle,
                    degraded: Some(reason),
                    recoveries: std::mem::take(&mut self.state.cycle_recoveries),
                    attempts: self.state.cycle_attempts,
                    backoff_ms: self.state.cycle_backoff_ms,
                    solver_resumes: self.state.cycle_solver_resumes,
                    placement_fnv: self.deployed_fingerprint(),
                    objective: None,
                    lower_bound: None,
                    // Boundary repairs may have moved copies even though
                    // the cycle itself degraded.
                    moved: self.state.pending_moved,
                    deferred: self.state.deferred.len(),
                    denied,
                    denial_rate: denial,
                    stale: false,
                    sim,
                    repairs: std::mem::take(&mut self.state.cycle_repairs),
                    rejections: std::mem::take(&mut self.state.cycle_rejections),
                }
            }
            None => {
                // Nothing has ever been deployed: the window's demand
                // is denied in full, visibly, instead of crashing out.
                self.push_recovery(RecoveryAction::StaleServe);
                self.state.stale_serves += 1;
                let (day, end) = self.window_of(cycle);
                let window = TimeWindow::new(SimTime::new(day * DAY), SimTime::new(end * DAY));
                let denied = self.cur.trace.slice(window).len() as u64;
                ServiceRecord {
                    cycle,
                    degraded: Some(reason),
                    recoveries: std::mem::take(&mut self.state.cycle_recoveries),
                    attempts: self.state.cycle_attempts,
                    backoff_ms: self.state.cycle_backoff_ms,
                    solver_resumes: self.state.cycle_solver_resumes,
                    placement_fnv: 0,
                    objective: None,
                    lower_bound: None,
                    moved: 0,
                    deferred: self.state.deferred.len(),
                    denied,
                    denial_rate: Some(1.0),
                    stale: true,
                    sim: None,
                    repairs: std::mem::take(&mut self.state.cycle_repairs),
                    rejections: std::mem::take(&mut self.state.cycle_rejections),
                }
            }
        };
        self.state.records.push(record);
        self.close_cycle()?;
        Ok(StepOutcome::CycleDegraded { cycle })
    }

    fn retreat(
        &mut self,
        to: StageId,
        from: StageId,
        cycle: usize,
    ) -> Result<StepOutcome, OpsError> {
        self.state.stage = to;
        self.state.attempts_done = 0;
        self.persist()?;
        Ok(StepOutcome::Retreated { cycle, stage: from })
    }

    fn advance(&mut self, next: StageId) -> Result<(), OpsError> {
        self.state.stage = next;
        self.state.attempts_done = 0;
        self.persist()
    }

    fn close_cycle(&mut self) -> Result<(), OpsError> {
        self.state.target = None;
        self.state.target_objective = None;
        self.state.target_lower_bound = None;
        self.state.pending_moved = 0;
        self.state.pending_sim = None;
        self.state.pending_denied = 0;
        self.state.pending_denial = None;
        self.state.attempts_done = 0;
        self.state.cycle_attempts = 0;
        self.state.cycle_backoff_ms = 0;
        self.state.cycle_solver_resumes = 0;
        self.state.cycle_recoveries.clear();
        self.state.cycle_repairs.clear();
        self.state.cycle_rejections.clear();
        self.state.cycle += 1;
        self.state.stage = StageId::Estimate;
        self.watchdog.reset();
        self.mem_fractional = None;
        let _ = std::fs::remove_file(self.solver_ckpt_path());
        let _ = std::fs::remove_file(self.fractional_path());
        self.persist()
    }

    /// Persist the durable state — *softly*. A failed snapshot write
    /// (full disk, torn rename, failed fsync) marks the service dirty,
    /// records a retry backoff, and returns `Ok`: the loop keeps
    /// serving from memory and every later transition retries the full
    /// write. Once the disk heals, one successful write makes the
    /// durable state current again — replaying from an older snapshot
    /// is deterministic, so nothing is lost but recomputation.
    fn persist(&mut self) -> Result<(), OpsError> {
        match write_json_snapshot(
            &self.cfg.ops.state_dir.join("service.state"),
            SERVICE_KIND,
            SERVICE_VERSION,
            &self.state.to_value(),
        ) {
            Ok(()) => {
                self.dirty = false;
                self.last_snapshot_error = None;
            }
            Err(e) => self.note_snapshot_failure(format!("persist service state: {e}")),
        }
        Ok(())
    }

    /// Account one failed snapshot write: dirty flag, lifetime counter,
    /// recorded (never slept) retry backoff at the current supervision
    /// coordinate, and the operator-facing reason.
    fn note_snapshot_failure(&mut self, what: String) {
        self.dirty = true;
        self.state.snapshot_failures += 1;
        let attempt = u32::try_from(self.state.snapshot_failures.min(16)).unwrap_or(16);
        self.state.cycle_backoff_ms += recorded_backoff(
            self.state.seed,
            self.state.cycle,
            self.state.stage,
            attempt,
            self.cfg.ops.backoff_base_ms,
        );
        self.last_snapshot_error = Some(what);
    }

    fn deployed_fingerprint(&self) -> u64 {
        self.state
            .deployed
            .as_ref()
            .map_or(0, |(_, p)| crate::PipelineState::placement_fingerprint(p))
    }

    // ---- deterministic inputs --------------------------------------

    fn window_of(&self, cycle: usize) -> (u64, u64) {
        let horizon = self.cur.trace.horizon().secs() / DAY;
        let day = self.cfg.ops.start_day + cycle as u64 * self.cfg.ops.period_days;
        (day, (day + self.cfg.ops.period_days).min(horizon))
    }

    /// Per-VHO MIP disk budgets for the current world: the configured
    /// disk policy materialized against the evolved catalog, with every
    /// storage-dark VHO collapsed to [`DARK_DISK_GB`] — present on the
    /// axis, unable to hold even the smallest video.
    fn mip_caps(&self) -> Vec<Gigabytes> {
        let mut caps = self
            .cur
            .mip_disk
            .capacities(&self.cur.net, self.cur.catalog.total_size());
        for (cap, &is_dark) in caps.iter_mut().zip(&self.dark) {
            if is_dark {
                *cap = Gigabytes::new(DARK_DISK_GB);
            }
        }
        caps
    }

    /// Rebuild the cycle's MIP instance from the streaming windows.
    /// Pure function of the (delta-evolved) world, the dark mask, the
    /// cycle index and the deployed placement (the migration anchor),
    /// so every attempt and every resumed process sees the identical
    /// instance.
    fn instance_for(&mut self, cycle: usize) -> MipInstance {
        let (day, end) = self.window_of(cycle);
        let history = self.history_win.advance(
            &self.cur.trace,
            TimeWindow::new(SimTime::new((day - 7) * DAY), SimTime::new(day * DAY)),
        );
        let future = self.period_win.advance(
            &self.cur.trace,
            TimeWindow::new(SimTime::new(day * DAY), SimTime::new(end * DAY)),
        );
        let demand = estimate_demand(
            self.cfg.ops.estimator,
            &self.cur.catalog,
            self.cur.net.num_nodes(),
            &history,
            &future,
            day,
            end - day,
            &self.cur.est,
        );
        let pc = self.state.deployed.as_ref().map(|(_, p)| PlacementCost {
            weight: 1.0,
            previous: Some(p.holder_lists()),
            // lint:allow(raw-index): update transfers are anchored at VHO 0 by convention
            origin: VhoId::new(0),
        });
        let disks = DiskConfig::Explicit(self.mip_caps());
        MipInstance::new(
            self.cur.net.clone(),
            self.cur.catalog.clone(),
            demand,
            &disks,
            1.0,
            0.0,
            pc.as_ref(),
        )
    }

    /// Per-cycle solver config: derived seed (service-distinct salt)
    /// plus the per-cycle pass budget.
    fn epf_for_cycle(&self, cycle: usize) -> EpfConfig {
        let base = EpfConfig {
            seed: derive_seed(self.cfg.ops.epf.seed, SERVICE_CYCLE_SALT ^ cycle as u64),
            ..self.cfg.ops.epf.clone()
        };
        match self.cfg.cycle_step_budget {
            Some(steps) => base.budgeted(steps),
            None => base,
        }
    }

    /// Replay the cycle's period window against `placement`, injecting
    /// the cycle's fault schedule (if any). Returns the sim summary
    /// plus denial accounting.
    fn replay_window(&mut self, cycle: usize, placement: &Placement) -> (SimSummary, u64, f64) {
        let (day, end) = self.window_of(cycle);
        let future = self.period_win.advance(
            &self.cur.trace,
            TimeWindow::new(SimTime::new(day * DAY), SimTime::new(end * DAY)),
        );
        let faults = self
            .cfg
            .cycle_faults
            .iter()
            .find(|(c, _)| *c == cycle)
            .map_or_else(FaultSchedule::empty, |(_, s)| s.clone());
        // A dark VHO replays with its zeroed sim disk but keeps serving
        // whatever leftover copies the churn-capped repair has not yet
        // drained — graceful decommission, not a cliff.
        let vhos = mip_vho_configs(placement, &self.cur.disks, 0.0, CacheKind::Lru);
        let policy = PolicyKind::MipRouting(placement.clone());
        let rep = simulate(
            &self.cur.net,
            &self.cur.paths,
            &self.cur.catalog,
            &future,
            &vhos,
            &policy,
            &SimConfig {
                seed: derive_seed(self.state.seed, 0x51A1 ^ cycle as u64),
                insert_on_miss: false,
                faults,
                ..SimConfig::default()
            },
        );
        let local = rep.served_local_pinned + rep.served_local_cached;
        let sim = SimSummary {
            max_gbps: rep.max_link_mbps / 1000.0,
            local_frac: local as f64 / rep.total_requests.max(1) as f64,
            total_requests: rep.total_requests,
        };
        (sim, rep.denied(), rep.denial_rate())
    }

    fn solver_ckpt_path(&self) -> PathBuf {
        self.cfg.ops.state_dir.join("solver.ckpt")
    }

    fn fractional_path(&self) -> PathBuf {
        self.cfg.ops.state_dir.join("fractional.snap")
    }
}

/// Apply one validated [`WorldDelta`] to the evolved world, in place.
/// Pure and total: link ops rescale capacities (edges are never
/// removed, so the hop-count [`vod_net::PathSet`] stays valid and is
/// deliberately *not* recomputed), VHO ops flip the dark mask and the
/// sim-side disk inventory, and appends grow the catalog tail with
/// seeded metadata. Both the live loop and the resume replay call this
/// with the same deltas in the same order, which is what makes the
/// evolved world a pure function of `(base world, applied prefix)`.
fn apply_world_delta(cur: &mut OpsWorld, dark: &mut [bool], delta: &WorldDelta) {
    delta.apply_links(&mut cur.net);
    for op in &delta.ops {
        match op {
            DeltaOp::DecommissionVho { vho } => {
                dark[vho.index()] = true;
                // Sim-side storage goes to zero outright: the replay
                // layer has no positivity constraint, and leftover
                // pinned copies keep serving until repair drains them.
                cur.disks[vho.index()] = Gigabytes::new(0.0);
            }
            DeltaOp::RecommissionVho { vho, disk } => {
                dark[vho.index()] = false;
                cur.disks[vho.index()] = *disk;
            }
            DeltaOp::AppendVideos { count } => {
                let start = cur.catalog.len();
                let mut videos: Vec<Video> = cur.catalog.iter().cloned().collect();
                for k in 0..*count {
                    let mix = derive_seed(delta.seed, (start + k) as u64);
                    let class = VideoClass::ALL
                        // lint:allow(no-panic-hot-path): mix % 4 < 4
                        // always converts, and indexes in ALL's bounds.
                        [usize::try_from(mix % 4).expect("mod 4 fits in usize")];
                    videos.push(Video {
                        id: VideoId::from_index(start + k),
                        class,
                        // New releases without history: only the
                        // complementary cache absorbs them until the
                        // next estimate window sees their demand.
                        kind: VideoKind::OtherNew,
                        release_day: 0,
                        weight: 0.1 + (mix % 100) as f64 / 100.0,
                    });
                }
                cur.catalog = Catalog::new(videos);
            }
            DeltaOp::ScaleLink { .. } | DeltaOp::CutLink { .. } => {} // apply_links handled these
        }
    }
}
