//! `vod-ops` — the supervised re-optimization pipeline.
//!
//! The paper's placement is not solved once: operationally it is
//! re-solved on a schedule as demand shifts (Section VII-H, Table VI).
//! This crate turns that schedule into a crash-safe service loop:
//!
//! - each cycle runs **estimate → solve → round → validate →
//!   simulate**, with the durable [`PipelineState`] written atomically
//!   (checksummed `vod-json` snapshots) after every stage transition,
//! - the solve stage emits resumable solver checkpoints, so a process
//!   killed mid-solve continues from the last surviving checkpoint and
//!   produces the bitwise-identical placement,
//! - every stage has a bounded retry budget with *recorded* (never
//!   slept) deterministic backoff, and a cycle that exhausts it falls
//!   back to the **last-good** validated placement with a typed
//!   [`DegradeReason`] — the service always has a serviceable
//!   placement from the first validated cycle onwards.
//!
//! The supervisor never reads a clock: interrupted and uninterrupted
//! runs are bit-for-bit comparable, which is exactly what the
//! `ops_pipeline` bench harness asserts.
//!
//! On top of the one-shot pipeline, [`Service`] is the *daemon* form:
//! a long-running supervised loop that streams demand from the live
//! trace window, re-solves incrementally under a per-cycle budget,
//! deploys migration-cost-aware diffs under a churn cap (excess moves
//! become typed [`DeferredMigration`]s), and degrades gracefully —
//! warm-resume → cold re-solve → last-good → stale-serve with denial
//! accounting — instead of ever aborting. The `service_drill` bench
//! harness drives it through a seeded kill/corruption matrix and
//! asserts the same bitwise recovery identity.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod diff;
pub mod pipeline;
pub mod service;
pub mod state;
pub mod supervise;

pub use diff::{apply_churn_cap, ChurnPlan, DeferredMigration};
pub use pipeline::{FaultPlan, OpsConfig, OpsWorld, Pipeline, StepOutcome};
pub use service::{
    Service, ServiceConfig, ServicePlan, ServiceRecord, ServiceState, SERVICE_KIND, SERVICE_VERSION,
};
pub use state::{
    CycleRecord, DegradeReason, OpsError, PipelineState, SimSummary, StageId, FRACTIONAL_KIND,
    STATE_KIND, STATE_VERSION,
};
pub use supervise::{deployment_sleep, recorded_backoff, RecoveryAction, Watchdog};
// Re-exported so service callers can build [`ServiceConfig::cycle_deltas`]
// without importing vod-net directly.
pub use vod_net::{DeltaOp, WorldDelta};
