//! `vod-ops` — the supervised re-optimization pipeline.
//!
//! The paper's placement is not solved once: operationally it is
//! re-solved on a schedule as demand shifts (Section VII-H, Table VI).
//! This crate turns that schedule into a crash-safe service loop:
//!
//! - each cycle runs **estimate → solve → round → validate →
//!   simulate**, with the durable [`PipelineState`] written atomically
//!   (checksummed `vod-json` snapshots) after every stage transition,
//! - the solve stage emits resumable solver checkpoints, so a process
//!   killed mid-solve continues from the last surviving checkpoint and
//!   produces the bitwise-identical placement,
//! - every stage has a bounded retry budget with *recorded* (never
//!   slept) deterministic backoff, and a cycle that exhausts it falls
//!   back to the **last-good** validated placement with a typed
//!   [`DegradeReason`] — the service always has a serviceable
//!   placement from the first validated cycle onwards.
//!
//! The supervisor never reads a clock: interrupted and uninterrupted
//! runs are bit-for-bit comparable, which is exactly what the
//! `ops_pipeline` bench harness asserts.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod pipeline;
pub mod state;

pub use pipeline::{FaultPlan, OpsConfig, OpsWorld, Pipeline, StepOutcome};
pub use state::{
    CycleRecord, DegradeReason, OpsError, PipelineState, SimSummary, StageId, FRACTIONAL_KIND,
    STATE_KIND, STATE_VERSION,
};
