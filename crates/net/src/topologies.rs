//! Topology generators for every network the evaluation uses.
//!
//! The paper's experiments run on (Table IV): a 55-node / 76-edge
//! backbone modeled on a deployed IPTV service, a 54-edge spanning
//! tree over the same VHOs, a full mesh, and three Rocketfuel-measured
//! ISP maps — Tiscali (49 nodes / 86 edges), Sprint (33/69) and Ebone
//! (23/38). The operational topologies are proprietary, so we generate
//! deterministic synthetic graphs with exactly the published node and
//! edge counts (see DESIGN.md §1 for why this preserves the relevant
//! behaviour): nodes are placed geometrically, joined in a ring for
//! biconnectivity, and the remaining edge budget is spent on chords
//! biased toward short distances and high-population "hub" metros,
//! which reproduces the hop-count and degree skew of real backbones.

use crate::graph::{make_nodes, Network, Node};
use rand::seq::SliceRandom;
use rand::Rng;
use vod_model::rng::derive_rng;
use vod_model::{Mbps, VhoId};

/// Default uniform capacity assigned by generators; experiments
/// override it via [`Network::set_uniform_capacity`].
pub const DEFAULT_CAPACITY: Mbps = Mbps(1000.0);

/// Seed namespace for topology construction, so that topology
/// randomness never collides with trace or solver randomness.
const TOPO_STREAM: u64 = 0x544F_504F; // "TOPO"

/// Heavy-tailed metro populations: rank-`r` metro has weight
/// `1 / r^0.6`, assignment of ranks to node ids shuffled by `seed`.
/// Weights are normalized to mean 1 so request volumes scale with the
/// node count.
pub fn metro_populations(n: usize, seed: u64) -> Vec<f64> {
    assert!(n > 0);
    let mut ranked: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(0.6)).collect();
    let mean: f64 = ranked.iter().sum::<f64>() / n as f64;
    for w in &mut ranked {
        *w /= mean;
    }
    let mut rng = derive_rng(seed, TOPO_STREAM ^ 1);
    ranked.shuffle(&mut rng);
    ranked
}

/// Generate a mesh backbone with `n` nodes and exactly `undirected_edges`
/// undirected edges (so `2 * undirected_edges` directed links).
///
/// Construction: seeded uniform positions in the unit square; a ring in
/// angular order around the centroid (guarantees biconnectivity, as in
/// real backbones built from SONET rings); chords added in order of a
/// score mixing Euclidean proximity and endpoint populations (hubs
/// attract chords, yielding Rocketfuel-like degree skew).
pub fn mesh_backbone(n: usize, undirected_edges: usize, seed: u64) -> Network {
    assert!(n >= 3, "mesh backbone needs at least 3 nodes");
    assert!(
        undirected_edges >= n,
        "need at least n edges for the ring ({n} nodes, {undirected_edges} edges)"
    );
    let max_edges = n * (n - 1) / 2;
    assert!(
        undirected_edges <= max_edges,
        "at most n(n-1)/2 = {max_edges} undirected edges possible"
    );

    let mut rng = derive_rng(seed, TOPO_STREAM);
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let populations = metro_populations(n, seed);

    // Ring in angular order around the centroid.
    let cx = positions.iter().map(|p| p.0).sum::<f64>() / n as f64;
    let cy = positions.iter().map(|p| p.1).sum::<f64>() / n as f64;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ang = |i: usize| (positions[i].1 - cy).atan2(positions[i].0 - cx);
        ang(a).total_cmp(&ang(b)).then(a.cmp(&b))
    });

    let mut present = vec![false; n * n];
    let mut edges: Vec<(VhoId, VhoId)> = Vec::with_capacity(undirected_edges);
    let add = |a: usize, b: usize, present: &mut Vec<bool>, edges: &mut Vec<(VhoId, VhoId)>| {
        let (lo, hi) = (a.min(b), a.max(b));
        if lo != hi && !present[lo * n + hi] {
            present[lo * n + hi] = true;
            edges.push((VhoId::from_index(lo), VhoId::from_index(hi)));
            true
        } else {
            false
        }
    };
    for k in 0..n {
        add(order[k], order[(k + 1) % n], &mut present, &mut edges);
    }

    // Chords: score = distance / (pop_a * pop_b)^0.5 — prefer short
    // links between big metros. Deterministic sort, stable tie-break.
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if !present[a * n + b] {
                let d = ((positions[a].0 - positions[b].0).powi(2)
                    + (positions[a].1 - positions[b].1).powi(2))
                .sqrt();
                let score = d / (populations[a] * populations[b]).sqrt();
                candidates.push((score, a, b));
            }
        }
    }
    candidates.sort_by(|x, y| x.0.total_cmp(&y.0).then((x.1, x.2).cmp(&(y.1, y.2))));
    for &(_, a, b) in &candidates {
        if edges.len() >= undirected_edges {
            break;
        }
        add(a, b, &mut present, &mut edges);
    }
    assert_eq!(edges.len(), undirected_edges);

    let nodes = make_nodes(&populations);
    Network::from_undirected_edges(nodes, &edges, DEFAULT_CAPACITY)
}

/// The default evaluation backbone: 55 VHOs, 76 bidirectional links
/// ("70+ bidirectional links", Section VII-A), from a fixed seed.
pub fn backbone55() -> Network {
    mesh_backbone(55, 76, 0xBACB05E)
}

/// Rocketfuel-like Tiscali: 49 nodes, 86 undirected links (Table IV).
pub fn tiscali() -> Network {
    mesh_backbone(49, 86, 0x0715_CA11)
}

/// Rocketfuel-like Sprint: 33 nodes, 69 undirected links (Table IV).
pub fn sprint() -> Network {
    mesh_backbone(33, 69, 0x0059_2147)
}

/// Rocketfuel-like Ebone: 23 nodes, 38 undirected links (Table IV).
pub fn ebone() -> Network {
    mesh_backbone(23, 38, 0xEB_0E)
}

/// Ladder-scale synthetic backbone for the 10⁵–10⁶-video scale rows:
/// `n` VHOs (the shipped ladder uses 100–500) at the ~1.7 edges/node
/// density of the Rocketfuel maps above, so hop counts and degree skew
/// extrapolate the Table IV graphs instead of introducing a new
/// regime. Deterministic in `n` alone — two runs of the same ladder
/// row always solve the same graph.
pub fn ladder_mesh(n: usize) -> Network {
    assert!(n >= 3, "ladder mesh needs at least a ring");
    mesh_backbone(n, (n * 17 / 10).max(n), 0x001A_DDE2)
}

/// Spanning tree over the same nodes as `net` (BFS tree from node 0),
/// preserving node populations — the hypothetical *tree* topology of
/// Table IV (55 nodes → 54 links for the default backbone).
pub fn spanning_tree_of(net: &Network) -> Network {
    assert!(net.is_strongly_connected());
    let n = net.num_nodes();
    let mut seen = vec![false; n];
    seen[0] = true;
    let mut queue = std::collections::VecDeque::from([VhoId::new(0)]);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    while let Some(u) = queue.pop_front() {
        for &(w, _) in net.neighbors(u) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                edges.push((u, w));
                queue.push_back(w);
            }
        }
    }
    Network::from_undirected_edges(net.nodes().to_vec(), &edges, DEFAULT_CAPACITY)
}

/// Full mesh over the same nodes as `net` (Table IV: 55 nodes → 1485
/// undirected links).
pub fn full_mesh_of(net: &Network) -> Network {
    let n = net.num_nodes();
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((VhoId::from_index(a), VhoId::from_index(b)));
        }
    }
    Network::from_undirected_edges(net.nodes().to_vec(), &edges, DEFAULT_CAPACITY)
}

/// Restrict `net` to its `k` highest-population nodes, re-linking with
/// a fresh mesh of the given edge count. Used by Table IV, which keeps
/// only the top-n VHOs by request count when comparing against the
/// smaller Rocketfuel maps.
pub fn top_k_subnetwork(net: &Network, k: usize, undirected_edges: usize, seed: u64) -> Network {
    assert!(k >= 3 && k <= net.num_nodes());
    let mut idx: Vec<usize> = (0..net.num_nodes()).collect();
    idx.sort_by(|&a, &b| {
        net.nodes()[b]
            .population
            .total_cmp(&net.nodes()[a].population)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort();
    let pops: Vec<f64> = idx.iter().map(|&i| net.nodes()[i].population).collect();
    let sub = mesh_backbone(k, undirected_edges, seed);
    let nodes: Vec<Node> = pops
        .iter()
        .enumerate()
        .map(|(i, &p)| Node {
            id: VhoId::from_index(i),
            name: format!("top-{i}"),
            population: p,
        })
        .collect();
    Network::from_directed_links(nodes, sub.links().to_vec())
}

// ------------------------- simple shapes for tests -------------------------

/// A path graph 0-1-2-…-(n-1).
pub fn line(n: usize) -> Network {
    assert!(n >= 2);
    let edges: Vec<_> = (0..n - 1)
        .map(|i| (VhoId::from_index(i), VhoId::from_index(i + 1)))
        .collect();
    Network::from_undirected_edges(make_nodes(&vec![1.0; n]), &edges, DEFAULT_CAPACITY)
}

/// A cycle graph.
pub fn ring(n: usize) -> Network {
    assert!(n >= 3);
    let edges: Vec<_> = (0..n)
        .map(|i| (VhoId::from_index(i), VhoId::from_index((i + 1) % n)))
        .collect();
    Network::from_undirected_edges(make_nodes(&vec![1.0; n]), &edges, DEFAULT_CAPACITY)
}

/// A star with node 0 at the hub.
pub fn star(n: usize) -> Network {
    assert!(n >= 2);
    let edges: Vec<_> = (1..n)
        .map(|i| (VhoId::new(0), VhoId::from_index(i)))
        .collect();
    Network::from_undirected_edges(make_nodes(&vec![1.0; n]), &edges, DEFAULT_CAPACITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::PathSet;

    #[test]
    fn backbone55_counts_match_paper() {
        let net = backbone55();
        assert_eq!(net.num_nodes(), 55);
        assert_eq!(net.num_undirected_edges(), 76);
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn rocketfuel_counts_match_table_iv() {
        for (net, n, e) in [(tiscali(), 49, 86), (sprint(), 33, 69), (ebone(), 23, 38)] {
            assert_eq!(net.num_nodes(), n);
            assert_eq!(net.num_undirected_edges(), e);
            assert!(net.is_strongly_connected());
        }
    }

    #[test]
    fn tree_and_mesh_of_backbone() {
        let net = backbone55();
        let tree = spanning_tree_of(&net);
        assert_eq!(tree.num_nodes(), 55);
        assert_eq!(tree.num_undirected_edges(), 54);
        assert!(tree.is_strongly_connected());
        let mesh = full_mesh_of(&net);
        assert_eq!(mesh.num_undirected_edges(), 55 * 54 / 2);
        let ps = PathSet::shortest_paths(&mesh);
        assert_eq!(ps.diameter(), 1);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = backbone55();
        let b = backbone55();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_differ() {
        let a = mesh_backbone(20, 30, 1);
        let b = mesh_backbone(20, 30, 2);
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn ladder_mesh_scales_to_hundreds_of_vhos() {
        for n in [100usize, 250, 500] {
            let net = ladder_mesh(n);
            assert_eq!(net.num_nodes(), n);
            assert_eq!(net.num_undirected_edges(), n * 17 / 10);
            assert!(net.is_strongly_connected());
            // Proximity-biased chords make the mesh geometric, so
            // routes grow ~√n; pin that envelope (a regression to
            // ring-like Θ(n) routing would blow the solver's per-path
            // penalty work at the scale rows).
            let ps = PathSet::shortest_paths(&net);
            assert!(
                ps.mean_hops() < (n as f64).sqrt(),
                "n={n}: mean hops {} above the geometric-mesh envelope",
                ps.mean_hops()
            );
            // Determinism: the ladder row's graph is a pure function
            // of `n`.
            assert_eq!(net.to_json(), ladder_mesh(n).to_json());
        }
    }

    #[test]
    fn populations_heavy_tailed_and_normalized() {
        let pops = metro_populations(55, 7);
        let mean = pops.iter().sum::<f64>() / 55.0;
        assert!((mean - 1.0).abs() < 1e-9);
        let max = pops.iter().cloned().fold(f64::MIN, f64::max);
        let min = pops.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 5.0, "population skew should be significant");
    }

    #[test]
    fn tree_has_longer_paths_than_mesh() {
        // Table IV's premise: fewer links → longer routes → more
        // capacity needed.
        let net = backbone55();
        let tree = spanning_tree_of(&net);
        let ps_net = PathSet::shortest_paths(&net);
        let ps_tree = PathSet::shortest_paths(&tree);
        assert!(ps_tree.mean_hops() > ps_net.mean_hops());
    }

    #[test]
    fn top_k_keeps_biggest_metros() {
        let net = backbone55();
        let sub = top_k_subnetwork(&net, 23, 38, 9);
        assert_eq!(sub.num_nodes(), 23);
        assert_eq!(sub.num_undirected_edges(), 38);
        // The smallest kept population must be >= the largest dropped.
        let mut all: Vec<f64> = net.nodes().iter().map(|n| n.population).collect();
        all.sort_by(|a, b| b.total_cmp(a));
        let kept_min = sub
            .nodes()
            .iter()
            .map(|n| n.population)
            .fold(f64::MAX, f64::min);
        assert!(kept_min >= all[23] - 1e-12);
    }

    #[test]
    fn simple_shapes() {
        assert_eq!(line(4).num_undirected_edges(), 3);
        assert_eq!(ring(5).num_undirected_edges(), 5);
        assert_eq!(star(6).num_undirected_edges(), 5);
        assert_eq!(PathSet::shortest_paths(&star(6)).diameter(), 2);
    }
}
