//! The backbone graph: VHO nodes and directed capacitated links.

use vod_json::{obj, Value};
use vod_model::{LinkId, Mbps, VhoId};

/// One VHO (vertex of the set `V`).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub id: VhoId,
    /// Human-readable label (metro area name).
    pub name: String,
    /// Relative subscriber population of the metro area; drives both
    /// the per-VHO request volume in the trace generator and the
    /// nonuniform disk-size scenarios of Fig. 11.
    pub population: f64,
}

/// One directed link (element of the set `L`).
///
/// A bidirectional physical link is represented as two `Link`s with
/// opposite directions; each direction has its own capacity `B_l`,
/// matching constraint (6) of the MIP which is per directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    pub id: LinkId,
    pub from: VhoId,
    pub to: VhoId,
    /// Capacity `B_l` in Mb/s.
    pub capacity: Mbps,
}

/// The backbone network: nodes, directed links, and adjacency.
#[derive(Debug, Clone)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// For each node, outgoing `(neighbor, link)` pairs sorted by
    /// neighbor id — the sort makes shortest-path tie-breaking (and
    /// therefore every experiment) deterministic.
    adjacency: Vec<Vec<(VhoId, LinkId)>>,
}

impl Network {
    /// Build a network from nodes and an *undirected* edge list; every
    /// undirected edge `{a, b}` becomes two directed links `a→b`, `b→a`
    /// with the given uniform capacity.
    pub fn from_undirected_edges(
        nodes: Vec<Node>,
        edges: &[(VhoId, VhoId)],
        capacity: Mbps,
    ) -> Self {
        let mut links = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            assert!(a != b, "self-loop edge {a}->{b}");
            assert!(
                a.index() < nodes.len() && b.index() < nodes.len(),
                "edge endpoint out of range"
            );
            links.push(Link {
                id: LinkId::from_index(links.len()),
                from: a,
                to: b,
                capacity,
            });
            links.push(Link {
                id: LinkId::from_index(links.len()),
                from: b,
                to: a,
                capacity,
            });
        }
        Self::from_directed_links(nodes, links)
    }

    /// Build a network from an explicit directed link list.
    pub fn from_directed_links(nodes: Vec<Node>, links: Vec<Link>) -> Self {
        for (idx, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.index(), idx, "nodes must be in id order");
        }
        for (idx, l) in links.iter().enumerate() {
            assert_eq!(l.id.index(), idx, "links must be in id order");
            assert!(l.from != l.to, "self-loop link {}", l.id);
        }
        let mut net = Self {
            nodes,
            links,
            adjacency: Vec::new(),
        };
        net.rebuild_adjacency();
        net
    }

    /// Recompute the adjacency index (needed after deserialization,
    /// since adjacency is derived state and not serialized).
    pub fn rebuild_adjacency(&mut self) {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for l in &self.links {
            adj[l.from.index()].push((l.to, l.id));
        }
        for list in &mut adj {
            list.sort();
        }
        self.adjacency = adj;
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of undirected edges (directed links / 2 when the graph is
    /// symmetric, which all our generators produce).
    pub fn num_undirected_edges(&self) -> usize {
        self.links.len() / 2
    }

    #[inline]
    pub fn node(&self, id: VhoId) -> &Node {
        &self.nodes[id.index()]
    }

    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    pub fn vho_ids(&self) -> impl Iterator<Item = VhoId> + Clone {
        vod_model::ids::all_vhos(self.nodes.len())
    }

    /// Outgoing `(neighbor, link)` pairs of `v`, sorted by neighbor.
    #[inline]
    pub fn neighbors(&self, v: VhoId) -> &[(VhoId, LinkId)] {
        &self.adjacency[v.index()]
    }

    /// Set every link's capacity to the same value (the evaluation
    /// assumes equal link capacities and sweeps the value, Section
    /// VII-A).
    pub fn set_uniform_capacity(&mut self, capacity: Mbps) {
        for l in &mut self.links {
            l.capacity = capacity;
        }
    }

    /// Set one link's capacity (used by fault scenarios that degrade
    /// or cut individual links). Topology and adjacency are untouched.
    pub fn set_link_capacity(&mut self, id: LinkId, capacity: Mbps) {
        self.links[id.index()].capacity = capacity;
    }

    /// Total subscriber population across all metros.
    pub fn total_population(&self) -> f64 {
        self.nodes.iter().map(|n| n.population).sum()
    }

    /// Whether every node can reach every other node (required for the
    /// placement model: constraint (3) forces remote service to be
    /// possible).
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        // For symmetric digraphs one BFS suffices; run it from node 0
        // and check full coverage, then verify symmetry cheaply.
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::from([VhoId::new(0)]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &(w, _) in self.neighbors(u) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Serialize to JSON (used to persist experiment scenarios). The
    /// derived adjacency index is not serialized; [`Network::from_json`]
    /// rebuilds it.
    pub fn to_json(&self) -> String {
        let nodes = Value::Arr(
            self.nodes
                .iter()
                .map(|n| {
                    obj(vec![
                        ("id", Value::Num(f64::from(n.id.0))),
                        ("name", Value::Str(n.name.clone())),
                        ("population", Value::Num(n.population)),
                    ])
                })
                .collect(),
        );
        let links = Value::Arr(
            self.links
                .iter()
                .map(|l| {
                    obj(vec![
                        ("id", Value::Num(f64::from(l.id.0))),
                        ("from", Value::Num(f64::from(l.from.0))),
                        ("to", Value::Num(f64::from(l.to.0))),
                        ("capacity", Value::Num(l.capacity.value())),
                    ])
                })
                .collect(),
        );
        obj(vec![("nodes", nodes), ("links", links)]).to_string_pretty()
    }

    /// Deserialize from JSON produced by [`Network::to_json`].
    pub fn from_json(s: &str) -> Result<Self, vod_json::JsonError> {
        let doc = Value::parse(s)?;
        let missing = |what: &str| vod_json::JsonError {
            offset: 0,
            message: format!("network JSON missing or malformed: {what}"),
        };
        let node_of = |v: &Value| -> Result<Node, vod_json::JsonError> {
            Ok(Node {
                id: VhoId::from_index(
                    v.get("id")
                        .and_then(Value::as_usize)
                        .ok_or_else(|| missing("node id"))?,
                ),
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| missing("node name"))?
                    .to_string(),
                population: v
                    .get("population")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| missing("node population"))?,
            })
        };
        let link_of = |v: &Value| -> Result<Link, vod_json::JsonError> {
            let index = |key: &str| {
                v.get(key)
                    .and_then(Value::as_usize)
                    .ok_or_else(|| missing("link field"))
            };
            Ok(Link {
                id: LinkId::from_index(index("id")?),
                from: VhoId::from_index(index("from")?),
                to: VhoId::from_index(index("to")?),
                capacity: Mbps::new(
                    v.get("capacity")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| missing("link capacity"))?,
                ),
            })
        };
        let nodes = doc
            .get("nodes")
            .and_then(Value::as_arr)
            .ok_or_else(|| missing("nodes array"))?
            .iter()
            .map(node_of)
            .collect::<Result<Vec<_>, _>>()?;
        let links = doc
            .get("links")
            .and_then(Value::as_arr)
            .ok_or_else(|| missing("links array"))?
            .iter()
            .map(link_of)
            .collect::<Result<Vec<_>, _>>()?;
        let mut net = Network {
            nodes,
            links,
            adjacency: Vec::new(),
        };
        net.rebuild_adjacency();
        Ok(net)
    }
}

/// Build `n` nodes with the given populations and placeholder names.
pub fn make_nodes(populations: &[f64]) -> Vec<Node> {
    populations
        .iter()
        .enumerate()
        .map(|(i, &p)| Node {
            id: VhoId::from_index(i),
            name: format!("metro-{i}"),
            population: p,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Network {
        let nodes = make_nodes(&[1.0, 2.0, 3.0]);
        let edges = [
            (VhoId::new(0), VhoId::new(1)),
            (VhoId::new(1), VhoId::new(2)),
            (VhoId::new(2), VhoId::new(0)),
        ];
        Network::from_undirected_edges(nodes, &edges, Mbps::from_gbps(1.0))
    }

    #[test]
    fn undirected_edges_become_directed_pairs() {
        let net = triangle();
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_links(), 6);
        assert_eq!(net.num_undirected_edges(), 3);
        let l0 = net.link(LinkId::new(0));
        let l1 = net.link(LinkId::new(1));
        assert_eq!((l0.from, l0.to), (l1.to, l1.from));
    }

    #[test]
    fn adjacency_sorted_and_complete() {
        let net = triangle();
        let nbrs = net.neighbors(VhoId::new(1));
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs[0].0 < nbrs[1].0);
    }

    #[test]
    fn connectivity_detection() {
        let net = triangle();
        assert!(net.is_strongly_connected());
        let disconnected = Network::from_undirected_edges(
            make_nodes(&[1.0, 1.0, 1.0]),
            &[(VhoId::new(0), VhoId::new(1))],
            Mbps::new(100.0),
        );
        assert!(!disconnected.is_strongly_connected());
    }

    #[test]
    fn capacity_update() {
        let mut net = triangle();
        net.set_uniform_capacity(Mbps::from_gbps(0.5));
        assert!(net.links().iter().all(|l| l.capacity == Mbps::new(500.0)));
    }

    #[test]
    fn population_totals() {
        assert_eq!(triangle().total_population(), 6.0);
    }

    #[test]
    fn json_roundtrip_restores_adjacency() {
        let net = triangle();
        let restored = Network::from_json(&net.to_json()).unwrap();
        assert_eq!(restored.num_links(), net.num_links());
        assert_eq!(
            restored.neighbors(VhoId::new(0)),
            net.neighbors(VhoId::new(0))
        );
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = Network::from_undirected_edges(
            make_nodes(&[1.0]),
            &[(VhoId::new(0), VhoId::new(0))],
            Mbps::new(1.0),
        );
    }
}
