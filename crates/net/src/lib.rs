//! Backbone network model for the VoD placement system.
//!
//! Implements the system environment of Section III: a set of video hub
//! offices (VHOs) in metropolitan areas, interconnected by a
//! high-bandwidth backbone of directed links, with a *fixed* routing
//! path `P_ij` between every ordered pair of VHOs (the paper assumes
//! predetermined shortest-path routing rather than arbitrary routing).
//!
//! The crate provides:
//! - [`Network`]: the graph of VHOs and directed capacitated links,
//! - [`PathSet`]: precomputed deterministic shortest (hop-count) paths
//!   for every ordered pair,
//! - [`topologies`]: generators for every topology the evaluation uses
//!   (the 55-node backbone, its spanning tree, the full mesh, and
//!   Rocketfuel-like Tiscali / Sprint / Ebone graphs), plus simple
//!   shapes for tests.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod delta;
pub mod graph;
pub mod routing;
pub mod topologies;

pub use delta::{DeltaOp, WorldDelta, CAPACITY_EPSILON};
pub use graph::{Link, Network, Node};
pub use routing::PathSet;
