//! Live world-reconfiguration deltas: the typed, validated mutations a
//! long-running deployment applies *between* placement cycles — VHO
//! decommission/recommission, link capacity rescale/cut, and catalog
//! growth (Section VII's moving world: demand drifts, links fail, VHOs
//! come and go).
//!
//! Design rules, mirrored by `vod_ops::Service`:
//!
//! - **Storage-dark, never removed.** Decommissioning a VHO collapses
//!   its *disk* budget to an epsilon but keeps the node in the graph:
//!   removing nodes would renumber every id axis (trace, demand,
//!   placement), destroying warm state for no modelling gain. A dark
//!   VHO stops holding copies (the repair pass re-homes or evicts
//!   them) but keeps originating demand.
//! - **Cut, never deleted.** A cut link keeps its id and endpoints but
//!   drops to [`CAPACITY_EPSILON`] so the MIP's bandwidth rows stay
//!   well-formed (`MipInstance` requires strictly positive
//!   capacities) while routing mass across it becomes prohibitively
//!   constrained.
//! - **Append-only catalog.** New videos are appended at the tail with
//!   ids continuing the existing dense range; existing ids never
//!   shift, so a deployed placement stays index-stable (it is simply
//!   *shorter* than the new catalog until the next deploy).
//! - **Seeded.** Appended-video metadata (length class, popularity
//!   weight) derives from the delta's `seed`, so two runs applying the
//!   same delta schedule build bitwise-identical worlds.
//!
//! A delta is validated against the concrete network before being
//! applied; [`WorldDelta::validate`] rejects dangling link/VHO
//! references, non-finite or non-positive scale factors, duplicate
//! VHO targets and zero-length appends with typed messages and never
//! panics. The empty delta is explicitly legal and applying it is
//! bitwise-identical to applying nothing.

use crate::graph::Network;
use vod_model::{Gigabytes, LinkId, Mbps, VhoId};

/// Floor used when a delta collapses a capacity (dark VHO disk, cut
/// link). Matches the solver-side `CAPACITY_FLOOR`: small enough to
/// deny any real allocation, large enough to keep every constraint row
/// strictly positive.
pub const CAPACITY_EPSILON: f64 = 1e-6;

/// One atomic mutation of the operational world.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Storage-dark a VHO: its placement disk collapses to an epsilon.
    /// The node stays in the graph and keeps originating demand.
    DecommissionVho { vho: VhoId },
    /// Bring a VHO (back) online with the given placement-disk budget.
    RecommissionVho { vho: VhoId, disk: Gigabytes },
    /// Multiply a link's capacity by `factor` (finite, strictly
    /// positive).
    ScaleLink { link: LinkId, factor: f64 },
    /// Cut a link: capacity collapses to [`CAPACITY_EPSILON`]; the
    /// link keeps its id and endpoints.
    CutLink { link: LinkId },
    /// Append `count` new videos at the catalog tail (ids continue the
    /// dense range; metadata derives from the delta seed).
    AppendVideos { count: usize },
}

impl DeltaOp {
    /// Whether this op only rescales capacities (link axis untouched,
    /// id axes untouched) — the remap-eligible class.
    #[must_use]
    pub fn is_capacity_only(&self) -> bool {
        matches!(self, DeltaOp::ScaleLink { .. } | DeltaOp::CutLink { .. })
    }

    /// Short operator-facing description for ledgers and logs.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            DeltaOp::DecommissionVho { vho } => format!("decommission-vho {vho}"),
            DeltaOp::RecommissionVho { vho, disk } => {
                format!("recommission-vho {vho} disk {disk}")
            }
            DeltaOp::ScaleLink { link, factor } => format!("scale-link {link} x{factor}"),
            DeltaOp::CutLink { link } => format!("cut-link {link}"),
            DeltaOp::AppendVideos { count } => format!("append-videos {count}"),
        }
    }
}

/// A validated, seeded reconfiguration applied between service cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldDelta {
    /// The service cycle *before* whose first stage this delta
    /// applies: the world mutates, the deployed placement is repaired
    /// under the churn cap, and only then does the cycle's estimate
    /// run against the new world.
    pub cycle: usize,
    /// Seeds appended-video metadata; unused by pure topology ops but
    /// always present so a delta is self-contained.
    pub seed: u64,
    pub ops: Vec<DeltaOp>,
}

impl WorldDelta {
    /// The empty delta at a cycle: valid, and a no-op when applied.
    #[must_use]
    pub fn empty(cycle: usize) -> Self {
        Self {
            cycle,
            seed: 0,
            ops: Vec::new(),
        }
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Remap-eligible deltas only touch capacities: every id axis
    /// (VHO, video, link) survives unchanged, so warm solver state
    /// remains index-stable.
    #[must_use]
    pub fn is_capacity_only(&self) -> bool {
        self.ops.iter().all(DeltaOp::is_capacity_only)
    }

    /// Whether the delta appends videos (the one op that grows an id
    /// axis and therefore invalidates mid-solve artifacts).
    #[must_use]
    pub fn grows_catalog(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, DeltaOp::AppendVideos { .. }))
    }

    /// Total videos this delta appends.
    #[must_use]
    pub fn appended_videos(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::AppendVideos { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Validate every op against the concrete network. Typed rejection
    /// of dangling link ids, dangling VHO ids, duplicate VHO targets,
    /// non-finite/non-positive scale factors and disks, and
    /// zero-length appends. Never panics on malformed input.
    pub fn validate(&self, net: &Network) -> Result<(), String> {
        let n_nodes = net.num_nodes();
        let n_links = net.num_links();
        let mut vho_targets: Vec<VhoId> = Vec::new();
        for (k, op) in self.ops.iter().enumerate() {
            match op {
                DeltaOp::DecommissionVho { vho } | DeltaOp::RecommissionVho { vho, .. } => {
                    if vho.index() >= n_nodes {
                        return Err(format!(
                            "op {k}: VHO {vho} dangling (network has {n_nodes} nodes)"
                        ));
                    }
                    if vho_targets.contains(vho) {
                        return Err(format!("op {k}: duplicate VHO target {vho}"));
                    }
                    vho_targets.push(*vho);
                    if let DeltaOp::RecommissionVho { disk, .. } = op {
                        if !disk.value().is_finite() || disk.value() <= 0.0 {
                            return Err(format!(
                                "op {k}: recommission disk must be finite and positive, got {}",
                                disk.value()
                            ));
                        }
                    }
                }
                DeltaOp::ScaleLink { link, factor } => {
                    if link.index() >= n_links {
                        return Err(format!(
                            "op {k}: link {link} dangling (network has {n_links} links)"
                        ));
                    }
                    if !factor.is_finite() || *factor <= 0.0 {
                        return Err(format!(
                            "op {k}: scale factor must be finite and positive, got {factor}"
                        ));
                    }
                }
                DeltaOp::CutLink { link } => {
                    if link.index() >= n_links {
                        return Err(format!(
                            "op {k}: link {link} dangling (network has {n_links} links)"
                        ));
                    }
                }
                DeltaOp::AppendVideos { count } => {
                    if *count == 0 {
                        return Err(format!("op {k}: append of zero videos is malformed"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Comma-joined op descriptions for ledgers.
    #[must_use]
    pub fn describe_ops(&self) -> String {
        self.ops
            .iter()
            .map(DeltaOp::describe)
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Apply the link-capacity ops to a network. Disk and catalog ops
    /// are applied by the layer that owns disks and catalogs
    /// (`vod_ops`); this keeps the network mutation in the crate that
    /// owns the invariants. The delta must have been validated.
    pub fn apply_links(&self, net: &mut Network) {
        for op in &self.ops {
            match *op {
                DeltaOp::ScaleLink { link, factor } => {
                    let cap = net.link(link).capacity.value();
                    net.set_link_capacity(link, Mbps::new((cap * factor).max(CAPACITY_EPSILON)));
                }
                DeltaOp::CutLink { link } => {
                    net.set_link_capacity(link, Mbps::new(CAPACITY_EPSILON));
                }
                DeltaOp::DecommissionVho { .. }
                | DeltaOp::RecommissionVho { .. }
                | DeltaOp::AppendVideos { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    fn net() -> Network {
        topologies::mesh_backbone(5, 7, 9)
    }

    #[test]
    fn empty_delta_is_valid_and_a_noop() {
        let n = net();
        let d = WorldDelta::empty(3);
        assert!(d.is_empty());
        assert!(d.validate(&n).is_ok());
        let mut m = n.clone();
        d.apply_links(&mut m);
        assert_eq!(
            n.to_json(),
            m.to_json(),
            "empty delta must leave the network bitwise identical"
        );
    }

    #[test]
    fn capacity_ops_classify_and_apply() {
        let mut n = net();
        let before = n.link(LinkId::new(0)).capacity.value();
        let d = WorldDelta {
            cycle: 0,
            seed: 1,
            ops: vec![
                DeltaOp::ScaleLink {
                    link: LinkId::new(0),
                    factor: 0.5,
                },
                DeltaOp::CutLink {
                    link: LinkId::new(1),
                },
            ],
        };
        assert!(d.is_capacity_only());
        assert!(!d.grows_catalog());
        assert!(d.validate(&n).is_ok());
        d.apply_links(&mut n);
        assert!((n.link(LinkId::new(0)).capacity.value() - before * 0.5).abs() < 1e-12);
        assert_eq!(n.link(LinkId::new(1)).capacity.value(), CAPACITY_EPSILON);
    }

    #[test]
    fn malformed_deltas_are_typed_rejections() {
        let n = net();
        let cases = vec![
            (
                DeltaOp::ScaleLink {
                    link: LinkId::from_index(n.num_links()),
                    factor: 2.0,
                },
                "dangling",
            ),
            (
                DeltaOp::ScaleLink {
                    link: LinkId::new(0),
                    factor: -1.0,
                },
                "positive",
            ),
            (
                DeltaOp::ScaleLink {
                    link: LinkId::new(0),
                    factor: f64::NAN,
                },
                "finite",
            ),
            (
                DeltaOp::CutLink {
                    link: LinkId::new(99),
                },
                "dangling",
            ),
            (
                DeltaOp::DecommissionVho {
                    vho: VhoId::new(200),
                },
                "dangling",
            ),
            (
                DeltaOp::RecommissionVho {
                    vho: VhoId::new(0),
                    disk: Gigabytes::new(-3.0),
                },
                "positive",
            ),
            (DeltaOp::AppendVideos { count: 0 }, "malformed"),
        ];
        for (op, needle) in cases {
            let d = WorldDelta {
                cycle: 0,
                seed: 0,
                ops: vec![op.clone()],
            };
            let err = d.validate(&n).expect_err(&format!("{op:?} must fail"));
            assert!(err.contains(needle), "{op:?}: {err}");
        }
        // Duplicate VHO targets across ops.
        let dup = WorldDelta {
            cycle: 0,
            seed: 0,
            ops: vec![
                DeltaOp::DecommissionVho { vho: VhoId::new(1) },
                DeltaOp::RecommissionVho {
                    vho: VhoId::new(1),
                    disk: Gigabytes::new(10.0),
                },
            ],
        };
        let err = dup.validate(&n).expect_err("duplicate target must fail");
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn append_accounting() {
        let d = WorldDelta {
            cycle: 2,
            seed: 7,
            ops: vec![
                DeltaOp::AppendVideos { count: 3 },
                DeltaOp::CutLink {
                    link: LinkId::new(0),
                },
                DeltaOp::AppendVideos { count: 2 },
            ],
        };
        assert!(d.grows_catalog());
        assert!(!d.is_capacity_only());
        assert_eq!(d.appended_videos(), 5);
        assert!(d.describe_ops().contains("append-videos 3"));
    }
}
