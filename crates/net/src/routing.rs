//! Fixed shortest-path routing between every ordered pair of VHOs.
//!
//! Section III: "we assume a predetermined path between the VHOs (e.g.,
//! based on shortest path routing)". The MIP only consumes the *set* of
//! links on each path (`P_ij ⊆ L`, Table I) and the hop count
//! `|P_ij|` that defines the transfer cost `c_ij = α|P_ij| + β`.
//!
//! Paths are computed by breadth-first search with deterministic
//! lowest-id tie-breaking, so two runs of any experiment route
//! identically.

use crate::graph::Network;
use std::collections::VecDeque;
use vod_model::{LinkId, VhoId};

/// Precomputed routing paths for all ordered VHO pairs.
#[derive(Debug, Clone)]
pub struct PathSet {
    n: usize,
    /// `paths[i*n + j]` = ordered list of directed links on the route
    /// from server `i` to client `j`; empty for `i == j` (local service
    /// uses no links: `P_ii = ∅`).
    paths: Vec<Vec<LinkId>>,
}

impl PathSet {
    /// Compute shortest hop-count paths on `net` for every ordered pair.
    ///
    /// Panics if the network is not strongly connected (the placement
    /// model requires every VHO to be remotely reachable).
    pub fn shortest_paths(net: &Network) -> Self {
        assert!(
            net.is_strongly_connected(),
            "placement requires a strongly connected backbone"
        );
        let n = net.num_nodes();
        let mut paths = vec![Vec::new(); n * n];
        // BFS from each *server* i over outgoing links yields the
        // shortest i -> j path for every j.
        for i in net.vho_ids() {
            let mut parent: Vec<Option<(VhoId, LinkId)>> = vec![None; n];
            let mut dist = vec![usize::MAX; n];
            dist[i.index()] = 0;
            let mut queue = VecDeque::from([i]);
            while let Some(u) = queue.pop_front() {
                for &(w, l) in net.neighbors(u) {
                    if dist[w.index()] == usize::MAX {
                        dist[w.index()] = dist[u.index()] + 1;
                        parent[w.index()] = Some((u, l));
                        queue.push_back(w);
                    }
                }
            }
            for j in net.vho_ids() {
                if i == j {
                    continue;
                }
                let mut links = Vec::with_capacity(dist[j.index()]);
                let mut cur = j;
                while cur != i {
                    // Strong connectivity is asserted on entry, so the
                    // parent chain is complete; if that ever regresses,
                    // an empty path (treated as unreachable downstream)
                    // beats tearing the process down.
                    let Some((prev, l)) = parent[cur.index()] else {
                        links.clear();
                        break;
                    };
                    links.push(l);
                    cur = prev;
                }
                links.reverse();
                paths[i.index() * n + j.index()] = links;
            }
        }
        Self { n, paths }
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The ordered links on the path used by server `i` to serve
    /// requests at client `j` (`P_ij`); empty when `i == j`.
    #[inline]
    pub fn path(&self, server: VhoId, client: VhoId) -> &[LinkId] {
        &self.paths[server.index() * self.n + client.index()]
    }

    /// Hop count `|P_ij|`.
    #[inline]
    pub fn hops(&self, server: VhoId, client: VhoId) -> usize {
        self.path(server, client).len()
    }

    /// Transfer cost per gigabyte, `c_ij = α·|P_ij| + β` (eq. (1)).
    #[inline]
    pub fn cost(&self, server: VhoId, client: VhoId, alpha: f64, beta: f64) -> f64 {
        alpha * self.hops(server, client) as f64 + beta
    }

    /// Maximum hop count over all pairs (network diameter).
    pub fn diameter(&self) -> usize {
        self.paths.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean hop count over all ordered pairs `i != j`.
    pub fn mean_hops(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total: usize = self.paths.iter().map(Vec::len).sum();
        total as f64 / (self.n * (self.n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{make_nodes, Network};
    use vod_model::Mbps;

    fn line(n: usize) -> Network {
        let nodes = make_nodes(&vec![1.0; n]);
        let edges: Vec<_> = (0..n - 1)
            .map(|i| (VhoId::from_index(i), VhoId::from_index(i + 1)))
            .collect();
        Network::from_undirected_edges(nodes, &edges, Mbps::new(1000.0))
    }

    #[test]
    fn local_path_is_empty() {
        let ps = PathSet::shortest_paths(&line(3));
        assert!(ps.path(VhoId::new(1), VhoId::new(1)).is_empty());
        assert_eq!(ps.hops(VhoId::new(2), VhoId::new(2)), 0);
    }

    #[test]
    fn line_hop_counts() {
        let ps = PathSet::shortest_paths(&line(5));
        assert_eq!(ps.hops(VhoId::new(0), VhoId::new(4)), 4);
        assert_eq!(ps.hops(VhoId::new(4), VhoId::new(0)), 4);
        assert_eq!(ps.hops(VhoId::new(1), VhoId::new(3)), 2);
        assert_eq!(ps.diameter(), 4);
    }

    #[test]
    fn path_links_are_contiguous_and_directed() {
        let net = line(4);
        let ps = PathSet::shortest_paths(&net);
        let path = ps.path(VhoId::new(0), VhoId::new(3));
        assert_eq!(path.len(), 3);
        let mut cur = VhoId::new(0);
        for &lid in path {
            let l = net.link(lid);
            assert_eq!(l.from, cur, "links must chain from server to client");
            cur = l.to;
        }
        assert_eq!(cur, VhoId::new(3));
    }

    #[test]
    fn cost_formula() {
        let ps = PathSet::shortest_paths(&line(3));
        // c_ij = alpha*hops + beta
        assert_eq!(ps.cost(VhoId::new(0), VhoId::new(2), 1.0, 0.0), 2.0);
        assert_eq!(ps.cost(VhoId::new(0), VhoId::new(2), 2.0, 0.5), 4.5);
        assert_eq!(ps.cost(VhoId::new(1), VhoId::new(1), 1.0, 0.5), 0.5);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // A 4-cycle has two equal-length routes between opposite
        // corners; BFS with sorted adjacency must pick the same one
        // every time.
        let nodes = make_nodes(&[1.0; 4]);
        let edges = [
            (VhoId::new(0), VhoId::new(1)),
            (VhoId::new(1), VhoId::new(2)),
            (VhoId::new(2), VhoId::new(3)),
            (VhoId::new(3), VhoId::new(0)),
        ];
        let net = Network::from_undirected_edges(nodes, &edges, Mbps::new(1.0));
        let a = PathSet::shortest_paths(&net);
        let b = PathSet::shortest_paths(&net);
        assert_eq!(
            a.path(VhoId::new(0), VhoId::new(2)),
            b.path(VhoId::new(0), VhoId::new(2))
        );
        assert_eq!(a.hops(VhoId::new(0), VhoId::new(2)), 2);
    }

    #[test]
    fn mean_hops_line() {
        let ps = PathSet::shortest_paths(&line(3));
        // pairs: (0,1)=1 (1,0)=1 (1,2)=1 (2,1)=1 (0,2)=2 (2,0)=2 → mean 8/6
        assert!((ps.mean_hops() - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strongly connected")]
    fn disconnected_rejected() {
        let net = Network::from_undirected_edges(
            make_nodes(&[1.0, 1.0, 1.0]),
            &[(VhoId::new(0), VhoId::new(1))],
            Mbps::new(1.0),
        );
        let _ = PathSet::shortest_paths(&net);
    }
}
