//! Property coverage for [`vod_net::WorldDelta::validate`]: malformed
//! deltas (dangling link/VHO references, non-positive or non-finite
//! scale factors, duplicate VHO targets, zero-length appends) are
//! rejected with typed messages and never panic, well-formed deltas
//! validate, and the empty delta applies as a bitwise no-op.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use proptest::prelude::*;
use vod_model::{Gigabytes, LinkId, VhoId};
use vod_net::{topologies, DeltaOp, Network, WorldDelta};

fn net() -> Network {
    topologies::mesh_backbone(6, 9, 17)
}

/// Decode one generated op against a world with `n_nodes`/`n_links`.
/// `kind` selects the op; the `bad` flag (when the malformed branch is
/// chosen) injects exactly one malformation so we know what to expect.
#[allow(clippy::too_many_arguments)]
fn build_op(
    kind: u8,
    bad: bool,
    idx: usize,
    factor: f64,
    n_nodes: usize,
    n_links: usize,
) -> (DeltaOp, bool) {
    match kind % 5 {
        0 => {
            let vho = if bad { n_nodes + idx } else { idx % n_nodes };
            (
                DeltaOp::DecommissionVho {
                    vho: VhoId::from_index(vho),
                },
                bad,
            )
        }
        1 => {
            let vho = idx % n_nodes;
            let disk = if bad {
                -factor.abs()
            } else {
                factor.abs() + 0.1
            };
            (
                DeltaOp::RecommissionVho {
                    vho: VhoId::from_index(vho),
                    disk: Gigabytes::new(disk),
                },
                bad,
            )
        }
        2 => {
            let link = if bad { n_links + idx } else { idx % n_links };
            (
                DeltaOp::ScaleLink {
                    link: LinkId::from_index(link),
                    factor: factor.abs() + 0.1,
                },
                bad,
            )
        }
        3 => {
            // Bad branch: keep the link in range but poison the factor.
            let f = if bad {
                -factor.abs()
            } else {
                factor.abs() + 0.1
            };
            (
                DeltaOp::ScaleLink {
                    link: LinkId::from_index(idx % n_links),
                    factor: f,
                },
                bad,
            )
        }
        _ => {
            let count = if bad { 0 } else { 1 + idx % 4 };
            (DeltaOp::AppendVideos { count }, bad)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated delta either validates or is rejected with a
    /// message — validation never panics — and a delta containing at
    /// least one injected malformation is always rejected.
    #[test]
    fn validate_rejects_malformed_without_panicking(
        spec in prop::collection::vec((0u8..5, any::<bool>(), 0usize..32, 0.25f64..4.0), 1..8),
        seed in 0u64..1000,
    ) {
        let n = net();
        let mut ops = Vec::new();
        let mut any_bad = false;
        for (slot, &(kind, bad, idx, factor)) in spec.iter().enumerate() {
            let (op, was_bad) =
                build_op(kind, bad, idx + slot, factor, n.num_nodes(), n.num_links());
            any_bad |= was_bad;
            ops.push(op);
        }
        let d = WorldDelta { cycle: 0, seed, ops };
        let res = d.validate(&n);
        if any_bad {
            let err = res.expect_err("a malformed op must be rejected");
            prop_assert!(!err.is_empty());
        }
    }

    /// Duplicate VHO targets are rejected even when each op is
    /// individually well-formed.
    #[test]
    fn duplicate_vho_targets_are_rejected(vho in 0usize..6, pair in any::<bool>()) {
        let n = net();
        let first = DeltaOp::DecommissionVho { vho: VhoId::from_index(vho) };
        let second = if pair {
            DeltaOp::RecommissionVho {
                vho: VhoId::from_index(vho),
                disk: Gigabytes::new(50.0),
            }
        } else {
            DeltaOp::DecommissionVho { vho: VhoId::from_index(vho) }
        };
        let d = WorldDelta { cycle: 1, seed: 2, ops: vec![first, second] };
        let err = d.validate(&n).expect_err("duplicate VHO target must fail");
        prop_assert!(err.contains("duplicate"), "{}", err);
    }

    /// The empty delta validates and applying it leaves the network
    /// bitwise identical to not applying anything.
    #[test]
    fn empty_delta_is_bitwise_noop(cycle in 0usize..64, seed in any::<u64>()) {
        let n = net();
        let d = WorldDelta { cycle, seed, ops: Vec::new() };
        prop_assert!(d.validate(&n).is_ok());
        prop_assert!(d.is_empty() && d.is_capacity_only() && !d.grows_catalog());
        let mut m = n.clone();
        d.apply_links(&mut m);
        prop_assert_eq!(n.to_json(), m.to_json());
    }

    /// Well-formed capacity deltas validate, classify as
    /// capacity-only, and keep every capacity finite and positive
    /// after application.
    #[test]
    fn well_formed_capacity_deltas_apply_cleanly(
        picks in prop::collection::vec((0usize..9, 0.25f64..4.0, any::<bool>()), 1..6),
    ) {
        let n = net();
        let ops: Vec<DeltaOp> = picks
            .iter()
            .map(|&(link, factor, cut)| {
                if cut {
                    DeltaOp::CutLink { link: LinkId::from_index(link) }
                } else {
                    DeltaOp::ScaleLink { link: LinkId::from_index(link), factor }
                }
            })
            .collect();
        let d = WorldDelta { cycle: 0, seed: 3, ops };
        prop_assert!(d.validate(&n).is_ok());
        prop_assert!(d.is_capacity_only());
        let mut m = n.clone();
        d.apply_links(&mut m);
        for l in m.links() {
            prop_assert!(l.capacity.value().is_finite() && l.capacity.value() > 0.0);
        }
    }
}
