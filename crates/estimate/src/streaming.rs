//! Streaming demand windows for the long-running placement service.
//!
//! A one-shot pipeline can afford [`Trace::restricted`] once per run —
//! two binary searches plus a clone. A *service* re-estimates demand
//! every cycle over windows that only ever slide forward, so this
//! module keeps monotone cursors into the live trace and advances them
//! incrementally: over a whole service run each cursor walks every
//! request at most once per direction (amortized O(1) per cycle for
//! the forward-sliding service pattern), and the produced window
//! traces are identical to `Trace::restricted` — pinned by test, so
//! the service and the one-shot pipeline estimate from the same bytes.

use vod_model::TimeWindow;
use vod_trace::Trace;

/// Monotone cursor pair over a time-sorted trace. Plain state, no
/// borrow: the service owns its world, so the trace is passed into
/// [`StreamingWindow::advance`] each cycle instead of being captured.
/// The trace must be append-only between calls (the already-scanned
/// prefix must not change) — re-sorting or replacing it invalidates
/// the cursors, in which case start from a fresh `StreamingWindow`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingWindow {
    /// First index with `time >=` the last window's start.
    lo: usize,
    /// First index with `time >=` the last window's end.
    hi: usize,
}

impl StreamingWindow {
    pub fn new() -> Self {
        Self::default()
    }

    /// Slide the cursors to `window` and return the restricted trace
    /// for it, bit-identical to `trace.restricted(window)`. Windows
    /// normally advance monotonically; a regression is still answered
    /// correctly (the cursors walk backwards), it just costs the
    /// amortization.
    pub fn advance(&mut self, trace: &Trace, window: TimeWindow) -> Trace {
        let reqs = trace.requests();
        // Tolerate a shorter trace than last time (fresh world after a
        // restart): clamp, then re-seek.
        self.lo = self.lo.min(reqs.len());
        self.hi = self.hi.min(reqs.len());
        while self.lo > 0 && reqs[self.lo - 1].time >= window.start {
            self.lo -= 1;
        }
        while self.lo < reqs.len() && reqs[self.lo].time < window.start {
            self.lo += 1;
        }
        while self.hi > 0 && reqs[self.hi - 1].time >= window.end {
            self.hi -= 1;
        }
        while self.hi < reqs.len() && reqs[self.hi].time < window.end {
            self.hi += 1;
        }
        let hi = self.hi.max(self.lo);
        Trace::new(trace.horizon().min(window.end), reqs[self.lo..hi].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{SimTime, VhoId, VideoId};
    use vod_trace::Request;

    fn trace(n: u64) -> Trace {
        let reqs = (0..n)
            .map(|i| Request {
                time: SimTime::new(i * 7 % 600),
                vho: VhoId::new((i % 5) as u16),
                video: VideoId::new((i % 11) as u32),
            })
            .collect();
        Trace::new(SimTime::new(600), reqs)
    }

    fn assert_same(a: &Trace, b: &Trace) {
        assert_eq!(a.horizon(), b.horizon());
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn matches_restricted_on_sliding_windows() {
        let t = trace(200);
        let mut win = StreamingWindow::new();
        for day in 0..6u64 {
            let w = TimeWindow::new(SimTime::new(day * 100), SimTime::new((day + 1) * 100));
            assert_same(&win.advance(&t, w), &t.restricted(w));
        }
    }

    #[test]
    fn matches_restricted_on_overlapping_and_regressing_windows() {
        let t = trace(150);
        let mut win = StreamingWindow::new();
        let spans = [
            (0, 300),
            (100, 400),
            (50, 350), // regression: start moved backwards
            (350, 350),
            (0, 600),
            (599, 600),
        ];
        for (s, e) in spans {
            let w = TimeWindow::new(SimTime::new(s), SimTime::new(e));
            assert_same(&win.advance(&t, w), &t.restricted(w));
        }
    }

    #[test]
    fn empty_trace_and_empty_windows() {
        let t = Trace::new(SimTime::new(10), vec![]);
        let mut win = StreamingWindow::new();
        let w = TimeWindow::new(SimTime::new(3), SimTime::new(7));
        assert_same(&win.advance(&t, w), &t.restricted(w));
        // Shrinking the trace under the cursors is clamped, not a panic.
        let full = trace(50);
        let mut win2 = StreamingWindow::new();
        let _ = win2.advance(&full, TimeWindow::new(SimTime::new(0), SimTime::new(600)));
        assert_same(&win2.advance(&t, w), &t.restricted(w));
    }
}
