//! Demand estimation for placement updates (Section VI-A).
//!
//! The MIP needs each video's upcoming demand `a_j^m` and peak-window
//! stream counts `f_j^m(t)` as inputs, which are not known a priori.
//! This crate implements the paper's strategies:
//!
//! - **History**: the previous window's (e.g. 7-day) request history is
//!   used verbatim for existing videos. For *new* videos it applies the
//!   paper's two substitution rules: a new TV-series episode inherits
//!   the previous week's episode of the same series (Fig. 4 shows their
//!   demand is similar), and a new blockbuster inherits the most
//!   popular movie of the previous week. Remaining new releases get no
//!   estimate — the complementary LRU cache absorbs them.
//! - **Perfect**: oracle knowledge of the upcoming window (the "perfect
//!   estimate" row of Table VI).
//! - **NoEstimate**: history only, nothing for new videos (the "no
//!   estimate" row of Table VI).

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

use vod_model::{Catalog, VideoId, VideoKind};
use vod_trace::{analysis, DemandInput, Trace};

pub mod streaming;
pub use streaming::StreamingWindow;

/// Which estimation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    History,
    Perfect,
    NoEstimate,
}

/// Peak-window extraction parameters (Section VI-B: |T| windows of
/// `window_secs`, 1 hour / 2 windows by default).
#[derive(Debug, Clone, Copy)]
pub struct EstimateConfig {
    pub window_secs: u64,
    pub n_windows: usize,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        Self {
            window_secs: 3600,
            n_windows: 2,
        }
    }
}

/// Estimate the demand input for the placement period starting at day
/// `period_start_day` (inclusive) and ending `period_days` later.
///
/// `history` is the already-observed trace ending at the period start;
/// `future` is consulted only by [`EstimatorKind::Perfect`] (it is the
/// ground-truth trace of the upcoming period).
// The argument list mirrors the paper's estimator inputs one-to-one;
// bundling them into a struct would just rename the problem.
#[allow(clippy::too_many_arguments)]
pub fn estimate_demand(
    kind: EstimatorKind,
    catalog: &Catalog,
    n_vhos: usize,
    history: &Trace,
    future: &Trace,
    period_start_day: u64,
    period_days: u64,
    cfg: &EstimateConfig,
) -> DemandInput {
    match kind {
        EstimatorKind::Perfect => {
            let windows =
                analysis::select_peak_windows(future, catalog, cfg.window_secs, cfg.n_windows);
            DemandInput::from_trace(future, catalog, n_vhos, windows)
        }
        EstimatorKind::History | EstimatorKind::NoEstimate => {
            let windows =
                analysis::select_peak_windows(history, catalog, cfg.window_secs, cfg.n_windows);
            let mut demand = DemandInput::from_trace(history, catalog, n_vhos, windows);
            if kind == EstimatorKind::History {
                substitute_new_release_demand(catalog, &mut demand, period_start_day, period_days);
            }
            demand
        }
    }
}

/// The previous episode of a series episode, if present in the catalog.
pub fn previous_episode(catalog: &Catalog, m: VideoId) -> Option<VideoId> {
    let v = catalog.video(m);
    let VideoKind::SeriesEpisode { series, episode } = v.kind else {
        return None;
    };
    if episode <= 1 {
        return None;
    }
    catalog
        .iter()
        .find(|w| {
            w.kind
                == VideoKind::SeriesEpisode {
                    series,
                    episode: episode - 1,
                }
        })
        .map(|w| w.id)
}

/// The most-requested movie (2-hour class) in the demand matrix — the
/// donor for blockbuster estimates.
pub fn top_movie(catalog: &Catalog, demand: &DemandInput) -> Option<VideoId> {
    catalog
        .iter()
        .filter(|v| v.class == vod_model::VideoClass::Movie)
        .map(|v| (demand.aggregate.video_total(v.id), v.id))
        .filter(|&(total, _)| total > 0.0)
        .max_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)))
        .map(|(_, id)| id)
}

/// Apply the paper's new-release substitutions in place: for every
/// video released inside the upcoming period, copy the demand rows of
/// its donor (previous episode, or previous week's top movie for
/// blockbusters). `OtherNew` releases keep zero demand.
fn substitute_new_release_demand(
    catalog: &Catalog,
    demand: &mut DemandInput,
    period_start_day: u64,
    period_days: u64,
) {
    let donor_movie = top_movie(catalog, demand);
    // Collect substitutions first (borrow rules: the donor rows live in
    // the same matrices being patched).
    let mut subs: Vec<(VideoId, VideoId)> = Vec::new();
    for v in catalog.iter() {
        if v.release_day < period_start_day || v.release_day >= period_start_day + period_days {
            continue;
        }
        let donor = match v.kind {
            VideoKind::SeriesEpisode { .. } => previous_episode(catalog, v.id),
            VideoKind::Blockbuster => donor_movie,
            _ => None,
        };
        if let Some(d) = donor {
            if d != v.id {
                subs.push((v.id, d));
            }
        }
    }
    for (target, donor) in subs {
        let row = demand.aggregate.row(donor).to_vec();
        set_row(&mut demand.aggregate, target, row);
        for t in 0..demand.active.len() {
            let row = demand.active[t].row(donor).to_vec();
            set_row(&mut demand.active[t], target, row);
        }
    }
}

/// Replace one row of a demand matrix.
fn set_row(
    matrix: &mut vod_trace::DemandMatrix,
    target: VideoId,
    row: Vec<(vod_model::VhoId, f64)>,
) {
    matrix.set_row(target, row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{SimTime, VhoId};
    use vod_net::topologies;
    use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

    fn world() -> (Catalog, Trace, usize) {
        let net = topologies::mesh_backbone(5, 8, 17);
        let catalog = synthesize_library(&LibraryConfig::default_for(300, 21, 17));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(2500.0, 21, 17));
        (catalog, trace, net.num_nodes())
    }

    fn split(trace: &Trace, day: u64) -> (Trace, Trace) {
        use vod_model::time::DAY;
        use vod_model::TimeWindow;
        let hist = trace.restricted(TimeWindow::new(SimTime::ZERO, SimTime::new(day * DAY)));
        let fut = trace.restricted(TimeWindow::new(SimTime::new(day * DAY), trace.horizon()));
        (hist, fut)
    }

    #[test]
    fn previous_episode_lookup() {
        let (catalog, _, _) = world();
        let ep2 = catalog
            .iter()
            .find(|v| {
                v.kind
                    == VideoKind::SeriesEpisode {
                        series: 0,
                        episode: 2,
                    }
            })
            .unwrap();
        let ep1 = catalog
            .iter()
            .find(|v| {
                v.kind
                    == VideoKind::SeriesEpisode {
                        series: 0,
                        episode: 1,
                    }
            })
            .unwrap();
        assert_eq!(previous_episode(&catalog, ep2.id), Some(ep1.id));
        assert_eq!(previous_episode(&catalog, ep1.id), None);
        let movie = catalog
            .iter()
            .find(|v| v.kind == VideoKind::Catalog)
            .unwrap();
        assert_eq!(previous_episode(&catalog, movie.id), None);
    }

    #[test]
    fn history_substitutes_series_demand() {
        let (catalog, trace, n_vhos) = world();
        let (hist, fut) = split(&trace, 14);
        let d = estimate_demand(
            EstimatorKind::History,
            &catalog,
            n_vhos,
            &hist,
            &fut,
            14,
            7,
            &EstimateConfig::default(),
        );
        // An episode released in week 3 must carry its predecessor's
        // (nonzero) history demand.
        let ep3 = catalog
            .iter()
            .find(|v| {
                matches!(v.kind, VideoKind::SeriesEpisode { episode: 3, .. }) && v.release_day >= 14
            })
            .expect("week-3 episode exists");
        let prev = previous_episode(&catalog, ep3.id).unwrap();
        assert!(d.aggregate.video_total(prev) > 0.0);
        assert_eq!(
            d.aggregate.video_total(ep3.id),
            d.aggregate.video_total(prev)
        );
    }

    #[test]
    fn no_estimate_leaves_new_videos_empty() {
        let (catalog, trace, n_vhos) = world();
        let (hist, fut) = split(&trace, 14);
        let d = estimate_demand(
            EstimatorKind::NoEstimate,
            &catalog,
            n_vhos,
            &hist,
            &fut,
            14,
            7,
            &EstimateConfig::default(),
        );
        for v in catalog.iter() {
            if v.release_day >= 14 {
                assert_eq!(
                    d.aggregate.video_total(v.id),
                    0.0,
                    "video {} released day {} should have no estimate",
                    v.id,
                    v.release_day
                );
            }
        }
    }

    #[test]
    fn perfect_matches_future() {
        let (catalog, trace, n_vhos) = world();
        let (hist, fut) = split(&trace, 14);
        let d = estimate_demand(
            EstimatorKind::Perfect,
            &catalog,
            n_vhos,
            &hist,
            &fut,
            14,
            7,
            &EstimateConfig::default(),
        );
        assert_eq!(d.aggregate.total(), fut.len() as f64);
    }

    #[test]
    fn history_estimate_correlates_with_reality() {
        // The headline claim of Section VII-H: the simple strategy is
        // close to perfect knowledge. Check rank correlation of
        // per-video totals between estimate and truth.
        let (catalog, trace, n_vhos) = world();
        let (hist, fut) = split(&trace, 14);
        let cfgd = EstimateConfig::default();
        let est = estimate_demand(
            EstimatorKind::History,
            &catalog,
            n_vhos,
            &hist,
            &fut,
            14,
            7,
            &cfgd,
        );
        let truth = estimate_demand(
            EstimatorKind::Perfect,
            &catalog,
            n_vhos,
            &hist,
            &fut,
            14,
            7,
            &cfgd,
        );
        // Pearson correlation over videos with any demand in either.
        let pairs: Vec<(f64, f64)> = catalog
            .ids()
            .map(|m| (est.aggregate.video_total(m), truth.aggregate.video_total(m)))
            .filter(|&(a, b)| a > 0.0 || b > 0.0)
            .collect();
        let n = pairs.len() as f64;
        let (ma, mb) = (
            pairs.iter().map(|p| p.0).sum::<f64>() / n,
            pairs.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let cov: f64 = pairs.iter().map(|p| (p.0 - ma) * (p.1 - mb)).sum();
        let va: f64 = pairs.iter().map(|p| (p.0 - ma).powi(2)).sum();
        let vb: f64 = pairs.iter().map(|p| (p.1 - mb).powi(2)).sum();
        let corr = cov / (va.sqrt() * vb.sqrt());
        assert!(corr > 0.7, "estimate poorly correlated with truth: {corr}");
    }

    #[test]
    fn top_movie_is_a_movie() {
        let (catalog, trace, n_vhos) = world();
        let (hist, _) = split(&trace, 14);
        let d = DemandInput::from_trace(&hist, &catalog, n_vhos, vec![]);
        let m = top_movie(&catalog, &d).expect("some movie requested");
        assert_eq!(catalog.video(m).class, vod_model::VideoClass::Movie);
    }

    #[test]
    fn set_row_roundtrip() {
        let mut m = vod_trace::DemandMatrix::zeros(2, 3);
        set_row(&mut m, VideoId::new(1), vec![(VhoId::new(2), 5.0)]);
        assert_eq!(m.get(VideoId::new(1), VhoId::new(2)), 5.0);
        assert_eq!(m.video_total(VideoId::new(0)), 0.0);
    }
}
